package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gecco/internal/shard"
)

// ForwardHeader marks a request as already routed. A shard that receives it
// serves locally unconditionally — two routers with momentarily divergent
// down-lists must not bounce a request between each other.
const ForwardHeader = "X-Gecco-Forward"

// ShardOptions configures a Router over a fixed peer set.
type ShardOptions struct {
	// Peers are the dial base URLs of every shard in the cluster, e.g.
	// "http://10.0.0.1:8080", in a fixed order shared by all nodes.
	Peers []string
	// MemberIDs are the ring identities of the peers, index-aligned with
	// Peers. Defaults to the Peers addresses themselves. Stable IDs
	// ("shard-0", ...) decouple placement from dial addresses, so moving a
	// shard to a new port does not reshuffle the keyspace.
	MemberIDs []string
	// Self is this node's index into Peers, or -1 for a pure coordinator
	// that owns no keys and only forwards (its svc is nil).
	Self int
	// VNodes is the per-member virtual-node count; <= 0 means
	// shard.DefaultVirtualNodes.
	VNodes int
	// ForwardRetries is how many times a buffered forward is attempted per
	// peer before the peer is marked down and the ring heals to its
	// successor; <= 0 means 3.
	ForwardRetries int
	// ForwardBackoff is the sleep between retries (doubling each attempt);
	// <= 0 means 25ms.
	ForwardBackoff time.Duration
	// ProbeTimeout bounds the /readyz probe made before proxying a stream
	// (whose body cannot be replayed, so the owner is probed first);
	// <= 0 means 2s.
	ProbeTimeout time.Duration
	// DownCooldown is how long a peer that exhausted its retries stays out
	// of the preference order before being tried again; <= 0 means 3s.
	DownCooldown time.Duration
	// Client performs forwarded requests. Defaults to a dedicated client
	// with no overall timeout (streams are long-lived; cancellation rides
	// the request context).
	Client *http.Client
}

func (o ShardOptions) withDefaults() ShardOptions {
	if len(o.MemberIDs) == 0 {
		o.MemberIDs = o.Peers
	}
	if o.ForwardRetries <= 0 {
		o.ForwardRetries = 3
	}
	if o.ForwardBackoff <= 0 {
		o.ForwardBackoff = 25 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.DownCooldown <= 0 {
		o.DownCooldown = 3 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Router fronts a shard cluster: it computes each request's routing key
// (the uploaded log's content for /abstract and /pipeline, the stream name
// for /stream, the job-ID prefix for /jobs) before any load-shedding, serves
// the request locally when the ring places the key here, and otherwise
// forwards it to the owning shard — with retry/backoff on connection
// failure and a heal to the ring successor when a peer stays unreachable.
// It implements http.Handler and replaces Handler(svc) as the top-level mux
// in sharded deployments; with svc == nil it is a pure coordinator.
type Router struct {
	svc   *Service
	local http.Handler // Handler(svc); nil on a pure coordinator
	opts  ShardOptions
	ring  *shard.Ring

	selfID   string
	addrByID map[string]string

	// downMu guards downUntil: peers that exhausted forward retries are
	// benched for DownCooldown so subsequent requests heal straight to the
	// ring successor instead of re-paying the connect timeout.
	downMu    sync.Mutex
	downUntil map[string]time.Time
}

// NewRouter builds a Router for svc (nil = pure coordinator) over the given
// peer set. An empty peer list with a non-nil svc yields a single-node
// router that serves everything locally.
func NewRouter(svc *Service, opts ShardOptions) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.MemberIDs) != len(opts.Peers) {
		return nil, fmt.Errorf("shard: %d member IDs for %d peers", len(opts.MemberIDs), len(opts.Peers))
	}
	if opts.Self >= len(opts.Peers) {
		return nil, fmt.Errorf("shard: self index %d out of range for %d peers", opts.Self, len(opts.Peers))
	}
	if svc == nil && opts.Self >= 0 {
		return nil, fmt.Errorf("shard: self index %d set but no local service", opts.Self)
	}
	if svc != nil && opts.Self < 0 && len(opts.Peers) > 0 {
		return nil, fmt.Errorf("shard: local service present but self index unset; use Self: -1 only for pure coordinators")
	}
	rt := &Router{
		svc:       svc,
		opts:      opts,
		ring:      shard.New(opts.MemberIDs, opts.VNodes),
		addrByID:  make(map[string]string, len(opts.Peers)),
		downUntil: make(map[string]time.Time),
	}
	if svc != nil {
		rt.local = Handler(svc)
	}
	for i, id := range opts.MemberIDs {
		rt.addrByID[id] = strings.TrimSuffix(opts.Peers[i], "/")
	}
	if opts.Self >= 0 {
		rt.selfID = opts.MemberIDs[opts.Self]
	}
	return rt, nil
}

// Ring exposes the router's placement ring (read-only) for stats and tests.
func (rt *Router) Ring() *shard.Ring { return rt.ring }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// An already-forwarded request is served locally no matter what this
	// router thinks the placement is: the sender owns the routing decision,
	// and honouring it unconditionally makes forwarding loop-free.
	if r.Header.Get(ForwardHeader) != "" {
		rt.serveLocal(w, r, nil)
		return
	}
	// A router with no peers is a single-node deployment: everything is
	// local, no key extraction needed.
	if rt.ring.Len() == 0 {
		rt.serveLocal(w, r, nil)
		return
	}
	path := r.URL.Path
	switch {
	case path == "/healthz":
		// Liveness is always local: it answers for this process only.
		if rt.local != nil {
			rt.local.ServeHTTP(w, r)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
	case path == "/readyz":
		if rt.local != nil {
			rt.local.ServeHTTP(w, r)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "role": "coordinator"})
	case path == "/stats":
		rt.handleClusterStats(w, r)
	case path == "/abstract" || path == "/pipeline":
		rt.routeByLog(w, r)
	case path == "/stream" && r.Method == http.MethodPost:
		rt.routeStreamPost(w, r)
	case strings.HasPrefix(path, "/stream/"):
		name := strings.TrimPrefix(path, "/stream/")
		name = strings.TrimSuffix(name, "/close")
		rt.route(w, r, "stream:"+name, nil)
	case strings.HasPrefix(path, "/jobs/"):
		rt.routeJob(w, r)
	default:
		rt.serveLocal(w, r, nil)
	}
}

// routeByLog keys /abstract and /pipeline by the uploaded log's content: the
// same text every per-log artifact (session, index, memo, result cache
// entry) is digested by, so the owner of the key owns the artifacts. The
// body must be read up front to extract the key; it is replayed into the
// local handler or the forwarded request.
func (rt *Router) routeByLog(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
		return
	}
	key := string(body)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		// Decode only the log field: the routing key must match the raw-body
		// form of the same log, so identical logs land on the same shard
		// regardless of which envelope the client used.
		var env struct {
			Log string `json:"log"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON envelope: %w", err))
			return
		}
		key = env.Log
	}
	rt.route(w, r, key, body)
}

// routeJob routes job polls and cancels by the shard prefix baked into the
// job ID ("s3-job-17" was minted by shard index 3), so cross-shard polling
// needs no lookup table. IDs without a recognised prefix are local.
func (rt *Router) routeJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id = strings.TrimSuffix(id, "/cancel")
	if rest, ok := strings.CutPrefix(id, "s"); ok {
		if num, _, ok := strings.Cut(rest, "-"); ok {
			if i, err := strconv.Atoi(num); err == nil && i >= 0 && i < len(rt.opts.MemberIDs) {
				rt.routeToMember(w, r, rt.opts.MemberIDs[i], nil)
				return
			}
		}
	}
	rt.serveLocal(w, r, nil)
}

// routeStreamPost keys named streams by "stream:<name>" so a stream's window
// state always lives on one shard across requests. Anonymous streams have no
// cross-request state; they are served locally, or — on a pure coordinator —
// sent to the fixed owner of the anonymous key so placement stays
// deterministic.
func (rt *Router) routeStreamPost(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("stream")
	if name == "" && rt.svc != nil {
		rt.serveLocal(w, r, nil)
		return
	}
	key := "stream:" + name
	for _, member := range rt.candidates(key) {
		if member == rt.selfID && rt.svc != nil {
			rt.serveLocal(w, r, nil)
			return
		}
		// The NDJSON body streams and cannot be replayed after a failed
		// attempt, so readiness is probed first (probes are idempotent and
		// retry freely); the proxy itself is single-shot.
		if !rt.probeReady(r, member) {
			rt.markDown(member)
			continue
		}
		rt.proxyStream(w, r, member)
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("no reachable shard for stream %q", name))
}

// route serves the key's owner: locally when this node owns it, else by
// forwarding down the key's preference order. body replaces the consumed
// request body (nil when it was not read).
func (rt *Router) route(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	for _, member := range rt.candidates(key) {
		if member == rt.selfID && rt.svc != nil {
			rt.serveLocal(w, r, body)
			return
		}
		if rt.forward(w, r, member, body) {
			return
		}
		rt.markDown(member)
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("no reachable shard owns this request"))
}

// routeToMember is route for a pre-resolved member (job IDs name their
// shard directly); an unreachable member falls back to local, where the
// poll yields a definitive 404 rather than a gateway error.
func (rt *Router) routeToMember(w http.ResponseWriter, r *http.Request, member string, body []byte) {
	if member == rt.selfID && rt.svc != nil {
		rt.serveLocal(w, r, body)
		return
	}
	if rt.forward(w, r, member, body) {
		return
	}
	rt.markDown(member)
	if rt.svc != nil {
		rt.serveLocal(w, r, body)
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s unreachable", member))
}

// candidates returns the key's preference order with benched peers moved to
// the back: the healthy successor is tried first, exactly as if the ring had
// healed without the down members, but a fully-benched ring still tries
// everyone rather than failing outright.
func (rt *Router) candidates(key string) []string {
	seq := rt.ring.Sequence(key)
	now := time.Now()
	up := make([]string, 0, len(seq))
	var benched []string
	rt.downMu.Lock()
	for _, m := range seq {
		if until, ok := rt.downUntil[m]; ok && now.Before(until) {
			benched = append(benched, m)
			continue
		}
		up = append(up, m)
	}
	rt.downMu.Unlock()
	return append(up, benched...)
}

func (rt *Router) markDown(member string) {
	if member == rt.selfID {
		return
	}
	rt.downMu.Lock()
	rt.downUntil[member] = time.Now().Add(rt.opts.DownCooldown)
	rt.downMu.Unlock()
}

// serveLocal dispatches to the wrapped service's own mux, replaying a
// consumed body when one was read for key extraction.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if rt.local == nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("coordinator has no local service for %s", r.URL.Path))
		return
	}
	if body != nil {
		r = r.Clone(r.Context())
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	rt.local.ServeHTTP(w, r)
}

// forward relays a buffered request to member, retrying transport failures
// with doubling backoff. Any HTTP response — including 4xx/5xx — is relayed
// verbatim and counts as success: the owner answered; its answer stands.
// Returns false only when the peer never answered.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, member string, body []byte) bool {
	addr, ok := rt.addrByID[member]
	if !ok {
		return false
	}
	backoff := rt.opts.ForwardBackoff
	for attempt := 0; attempt < rt.opts.ForwardRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				return false
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, addr+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return true
		}
		req.Header = r.Header.Clone()
		req.Header.Set(ForwardHeader, rt.forwarderID())
		resp, err := rt.opts.Client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away; nothing to relay and no reason to
				// blame the peer.
				return true
			}
			continue
		}
		relayResponse(w, resp, false)
		return true
	}
	return false
}

// probeReady reports whether member answers GET /readyz with 200, retrying
// transport errors. A 503 (draining) is a definitive "route past me".
func (rt *Router) probeReady(r *http.Request, member string) bool {
	addr, ok := rt.addrByID[member]
	if !ok {
		return false
	}
	backoff := rt.opts.ForwardBackoff
	for attempt := 0; attempt < rt.opts.ForwardRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				return false
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil)
		if err != nil {
			cancel()
			return false
		}
		req.Header.Set(ForwardHeader, rt.forwarderID())
		resp, err := rt.opts.Client.Do(req)
		cancel()
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	return false
}

// proxyStream relays a full-duplex NDJSON stream: the client's request body
// streams through to the owner while the owner's response lines stream back,
// flushed per chunk so drift alerts arrive as they happen, not when a buffer
// fills.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, member string) {
	addr := rt.addrByID[member]
	req, err := http.NewRequestWithContext(r.Context(), r.Method, addr+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardHeader, rt.forwarderID())
	// Force chunked upload: the proxy must not buffer the request body
	// waiting for a length it will never learn.
	req.ContentLength = -1
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("proxying stream to %s: %v", member, err))
		return
	}
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	relayResponse(w, resp, true)
}

// relayResponse copies a forwarded response to the client; flush streams
// each read chunk immediately (NDJSON proxying).
func relayResponse(w http.ResponseWriter, resp *http.Response, flush bool) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		// Headers are copied wholesale; iteration order does not reach the
		// wire in any observable way beyond HTTP's own unordered semantics.
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if !flush {
		io.Copy(w, resp.Body)
		return
	}
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleClusterStats fans /stats out to every ring member and merges the
// answers into cluster totals plus a per-shard breakdown. ?scope=local (or
// an already-forwarded request, handled in ServeHTTP) returns just this
// shard's counters — which is also what the fan-out asks peers for.
func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("scope") == "local" {
		rt.serveLocal(w, r, nil)
		return
	}
	if rt.ring.Len() == 0 {
		rt.serveLocal(w, r, nil)
		return
	}
	out := ClusterStats{Shards: make(map[string]Stats, rt.ring.Len())}
	type answer struct {
		member string
		stats  Stats
		err    error
	}
	members := rt.ring.Members()
	answers := make([]answer, len(members))
	var wg sync.WaitGroup
	for i, member := range members {
		if member == rt.selfID && rt.svc != nil {
			answers[i] = answer{member: member, stats: rt.svc.Stats()}
			continue
		}
		wg.Add(1)
		go func(i int, member string) {
			defer wg.Done()
			st, err := rt.fetchStats(r, member)
			answers[i] = answer{member: member, stats: st, err: err}
		}(i, member)
	}
	wg.Wait()
	// Merge in canonical member order; MergeStats is commutative and
	// associative (pinned by test), so the order is cosmetic anyway.
	for _, a := range answers {
		if a.err != nil {
			out.Unreachable = append(out.Unreachable, a.member)
			continue
		}
		out.Stats = MergeStats(out.Stats, a.stats)
		out.Shards[a.member] = a.stats
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) fetchStats(r *http.Request, member string) (Stats, error) {
	addr, ok := rt.addrByID[member]
	if !ok {
		return Stats{}, fmt.Errorf("unknown member %s", member)
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/stats?scope=local", nil)
	if err != nil {
		return Stats{}, err
	}
	req.Header.Set(ForwardHeader, rt.forwarderID())
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("shard %s: /stats returned %d", member, resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("shard %s: decoding stats: %w", member, err)
	}
	return st, nil
}

// forwarderID identifies this router on the forward header (useful in peer
// logs; any non-empty value short-circuits re-routing).
func (rt *Router) forwarderID() string {
	if rt.selfID != "" {
		return rt.selfID
	}
	return "coordinator"
}

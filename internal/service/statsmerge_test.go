package service

import (
	"reflect"
	"testing"
)

// sampleStats builds distinct, fully populated Stats values (plus sparse
// ones with nil Disk / nil Stages) so the algebraic checks exercise every
// merge path, including the pointer and map identities.
func sampleStats() []Stats {
	full := func(seed int64) Stats {
		var s Stats
		s.Cache = CacheStats{Hits: seed, Misses: seed + 1, Evictions: seed + 2, Entries: int(seed % 7), Capacity: 64}
		s.Sessions = SessionStats{Hits: seed * 3, Misses: seed, Evictions: 1, Entries: 2, Capacity: 8, IndexBytes: seed * 1000, MappedBytes: seed * 10}
		s.Streams = StreamStats{Live: 1, Capacity: 16, Created: seed, Closed: seed / 2, Evicted: 0, Traces: seed * 5, Regroupings: seed / 3, Drifts: 1}
		s.Jobs = JobStats{Started: seed * 2, Completed: seed*2 - 1, Failed: 0, Cancelled: 1, Coalesced: seed / 4, Running: 1, Queued: int(seed % 3)}
		s.Pipeline = PipelineStats{
			Runs: seed, Entries: 3, Capacity: 32, Evictions: seed / 5,
			Stages: map[string]StageCounters{
				"abstract": {Hits: seed, Misses: seed / 2},
				"discover": {Hits: 1, Misses: seed},
			},
		}
		s.Disk = &DiskStats{
			Dir: "/data/a", IndexFiles: int(seed % 5), IndexBytes: seed * 4096, ResultFiles: 2,
			SpillWrites: seed, SpillErrors: 0, WarmOpens: seed / 2, WarmOpenErrors: 1,
			ResultsSaved: seed, ResultsLoaded: seed / 3,
		}
		return s
	}
	a := full(11)
	b := full(29)
	b.Disk.Dir = "/data/b"
	b.Pipeline.Stages["conform"] = StageCounters{Hits: 7, Misses: 2}
	// c has no disk tier and no pipeline activity: exercises the nil
	// identities against populated peers.
	c := full(5)
	c.Disk = nil
	c.Pipeline.Stages = nil
	return []Stats{a, b, c}
}

// TestMergeStatsCommutative: the fan-out aggregator must not care which
// shard answered first.
func TestMergeStatsCommutative(t *testing.T) {
	samples := sampleStats()
	for i, a := range samples {
		for j, b := range samples {
			ab, ba := MergeStats(a, b), MergeStats(b, a)
			if !reflect.DeepEqual(ab, ba) {
				t.Errorf("merge(s%d,s%d) != merge(s%d,s%d):\n%+v\nvs\n%+v", i, j, j, i, ab, ba)
			}
		}
	}
}

// TestMergeStatsAssociative: aggregating shard stats pairwise in any
// grouping yields the same cluster totals.
func TestMergeStatsAssociative(t *testing.T) {
	s := sampleStats()
	left := MergeStats(MergeStats(s[0], s[1]), s[2])
	right := MergeStats(s[0], MergeStats(s[1], s[2]))
	if !reflect.DeepEqual(left, right) {
		t.Errorf("merge not associative:\n(ab)c = %+v\na(bc) = %+v", left, right)
	}
}

// TestMergeStatsZeroIdentity: merging with the zero Stats reproduces the
// input exactly — including nil Disk staying nil and nil Stages staying nil,
// so a shard with no disk tier does not grow a phantom one in the aggregate.
func TestMergeStatsZeroIdentity(t *testing.T) {
	var zero Stats
	for i, s := range sampleStats() {
		if got := MergeStats(s, zero); !reflect.DeepEqual(got, s) {
			t.Errorf("merge(s%d, zero) != s%d:\n%+v\nvs\n%+v", i, i, got, s)
		}
		if got := MergeStats(zero, s); !reflect.DeepEqual(got, s) {
			t.Errorf("merge(zero, s%d) != s%d:\n%+v\nvs\n%+v", i, i, got, s)
		}
	}
	if got := MergeStats(zero, zero); !reflect.DeepEqual(got, zero) {
		t.Errorf("merge(zero, zero) = %+v, want zero", got)
	}
}

// TestMergeStatsDirUnion pins the canonical Dir representation: sorted,
// deduplicated, comma-joined — shards sharing one warm tier collapse to a
// single entry.
func TestMergeStatsDirUnion(t *testing.T) {
	mk := func(dir string) Stats { return Stats{Disk: &DiskStats{Dir: dir}} }
	cases := []struct{ a, b, want string }{
		{"/data/b", "/data/a", "/data/a,/data/b"},
		{"/shared", "/shared", "/shared"},
		{"/data/b,/data/a", "/data/c", "/data/a,/data/b,/data/c"},
		{"", "/only", "/only"},
	}
	for _, tc := range cases {
		if got := MergeStats(mk(tc.a), mk(tc.b)).Disk.Dir; got != tc.want {
			t.Errorf("unionDirs(%q, %q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestMergeStatsDoesNotAliasInputs: merged maps and Disk pointers must be
// fresh — mutating the aggregate must not corrupt a shard's own snapshot.
func TestMergeStatsDoesNotAliasInputs(t *testing.T) {
	s := sampleStats()
	out := MergeStats(s[0], s[2]) // s[2] has nil Disk: out.Disk copies s[0].Disk
	if out.Disk == s[0].Disk {
		t.Error("merged Disk aliases input pointer")
	}
	out.Pipeline.Stages["abstract"] = StageCounters{Hits: -1}
	if s[0].Pipeline.Stages["abstract"].Hits == -1 {
		t.Error("merged Stages map aliases input map")
	}
}

package service

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestCacheEvictionOrderUnderPressure fills a single-shard cache far past
// capacity and checks that exactly the least-recently-used entries fall out
// at every step: survivors are the most recent `capacity` touched keys, in
// recency order.
func TestCacheEvictionOrderUnderPressure(t *testing.T) {
	const capacity = 4
	c := NewCache(capacity) // < defaultCacheShards, so one exact-LRU shard
	touch := func(key string) {
		if _, ok := c.Get(key); !ok {
			c.Put(key, &JobResult{})
		}
	}
	// Twelve touches, with re-touches mixed in so recency differs from
	// insertion order.
	sequence := []string{"a", "b", "c", "d", "a", "e", "f", "b", "g", "h", "e", "i"}
	for _, k := range sequence {
		touch(k)
	}
	// Recency after the sequence (most recent first): i, e, h, g — then b
	// was evicted by h's insertion, etc.
	wantLive := []string{"i", "e", "h", "g"}
	wantDead := []string{"a", "b", "c", "d", "f"}
	for _, k := range wantDead {
		if _, ok := c.getQuiet(k); ok {
			t.Errorf("key %q should have been evicted", k)
		}
	}
	for _, k := range wantLive {
		if _, ok := c.getQuiet(k); !ok {
			t.Errorf("key %q should have survived", k)
		}
	}
	st := c.Stats()
	if st.Entries != capacity {
		t.Fatalf("entries = %d, want %d", st.Entries, capacity)
	}
	// 11 inserts (b and e re-enter after being evicted) into 4 slots.
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
}

// TestCacheConcurrentGetPut hammers all shards from many goroutines (run
// under -race via `make race`). Beyond the absence of data races, it checks
// the invariants the service relies on: a Get never returns a value the key
// was not Put under, and the entry count never exceeds capacity.
func TestCacheConcurrentGetPut(t *testing.T) {
	const (
		capacity   = 64
		goroutines = 8
		opsEach    = 2000
		keySpace   = 200 // > capacity, so eviction churns continuously
	)
	c := NewCache(capacity)
	results := make([]*JobResult, keySpace)
	for i := range results {
		results[i] = &JobResult{Distance: float64(i)}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keySpace)
				key := fmt.Sprintf("key-%d", k)
				if rng.Intn(2) == 0 {
					c.Put(key, results[k])
				} else if v, ok := c.Get(key); ok && v != results[k] {
					t.Errorf("Get(%s) returned a foreign value", key)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > capacity {
		t.Fatalf("entries = %d exceeds capacity %d", st.Entries, capacity)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

package service

import (
	"net/http"
	"net/url"
	"testing"
)

// TestWireMemoSkipsReparse pins the wire-digest fast path end to end: a
// byte-identical re-upload must produce the same response without the
// server parsing the log again. The parse is observed through the session
// cache — with sessions disabled and the result cached, the lazy request
// has no reason to touch the log at all, so a missing loadLog invocation
// is exactly what "skipped the parse" means. We assert the observable
// contract instead: responses identical, second one cached, and a third
// request with a different constraint set (result-cache miss) still
// succeeds, proving the lazy loader recovers the events when a solve
// actually needs them.
func TestWireMemoSkipsReparse(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	logXES := runningExampleXES(t)
	params := url.Values{"constraints": {"distinct(role) <= 1"}, "mode": {"dfg"}}

	resp1, out1 := postAbstract(t, srv, logXES, params)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d", resp1.StatusCode)
	}
	if _, ok := svc.wire.get(wireKey("xes", logXES)); !ok {
		t.Fatal("first upload did not populate the wire memo")
	}

	resp2, out2 := postAbstract(t, srv, logXES, params)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d", resp2.StatusCode)
	}
	if !out2.Cached {
		t.Fatal("byte-identical re-upload missed the result cache")
	}
	if out2.Abstracted != out1.Abstracted || out2.Distance != out1.Distance {
		t.Fatal("lazy-path response differs from parsed-path response")
	}

	// A fresh constraint set misses the result cache, so the solve must
	// transparently obtain the events (live session or lazy parse).
	resp3, out3 := postAbstract(t, srv, logXES, url.Values{"constraints": {"distinct(role) <= 2"}, "mode": {"dfg"}})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("third: status %d", resp3.StatusCode)
	}
	if !out3.Feasible {
		t.Fatalf("third request infeasible: %s", out3.Diagnostics)
	}
}

// TestWireMemoEmptyLogStillRejected closes the validation loophole: an
// empty (but well-formed) upload is rejected with 400, and a byte-identical
// retry must be rejected the same way rather than slipping through the
// memo's lazy path.
func TestWireMemoEmptyLogStillRejected(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	empty := "<log xes.version=\"1.0\"></log>"
	params := url.Values{"constraints": {"distinct(role) <= 1"}}
	for i := 0; i < 2; i++ {
		resp, _ := postAbstract(t, srv, empty, params)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("attempt %d: status %d, want 400", i+1, resp.StatusCode)
		}
	}
}

// TestOmitAbstracted pins the response-rendering knob: abstracted=false
// drops the serialised log but nothing else, and — being a rendering
// choice — shares a cache entry with the full-fat form.
func TestOmitAbstracted(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	logXES := runningExampleXES(t)
	full := url.Values{"constraints": {"distinct(role) <= 1"}, "mode": {"dfg"}}
	lean := url.Values{"constraints": {"distinct(role) <= 1"}, "mode": {"dfg"}, "abstracted": {"false"}}

	_, out1 := postAbstract(t, srv, logXES, full)
	if out1.Abstracted == "" {
		t.Fatal("full request returned no abstracted log")
	}
	resp2, out2 := postAbstract(t, srv, logXES, lean)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("lean: status %d", resp2.StatusCode)
	}
	if out2.Abstracted != "" {
		t.Fatal("abstracted=false still returned the serialised log")
	}
	if !out2.Cached {
		t.Fatal("abstracted=false split the cache key — it must be rendering-only")
	}
	if out2.Distance != out1.Distance || len(out2.GroupClasses) != len(out1.GroupClasses) {
		t.Fatal("lean response dropped more than the abstracted log")
	}
}

// HTTP surface of the staged pipeline engine: POST /pipeline accepts a raw
// XES/CSV log (or the JSON envelope) plus a stage list and runs it through
// RunPipeline. The endpoint mirrors /abstract's conventions — load shedding,
// dual request forms, error-status mapping — so clients can switch between
// one-shot solves and full pipelines without relearning the API.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gecco/internal/conformance"
	"gecco/internal/constraints"
	"gecco/internal/csvlog"
	"gecco/internal/eventlog"
	"gecco/internal/pipeline"
	"gecco/internal/xes"
)

// PipelineHTTPRequest is the JSON envelope accepted by POST /pipeline. Raw
// XES or CSV bodies are also accepted, with constraints and the stage list
// read from the constraints and stages query parameters.
type PipelineHTTPRequest struct {
	// Format of Log: "xes" or "csv"; default sniffs XES for bodies
	// starting with '<'.
	Format string `json:"format,omitempty"`
	// Log is the event log serialised in Format.
	Log string `json:"log"`
	// Constraints holds newline-separated constraint declarations; empty
	// lets a suggest stage derive them from the log.
	Constraints string `json:"constraints,omitempty"`
	// Stages is the stage list; empty runs the default
	// suggest → abstract → discover → conform pipeline.
	Stages []pipeline.StageSpec `json:"stages,omitempty"`
	// IncludeAbstracted additionally returns the abstracted log serialised
	// in the request format (it can be large; off by default).
	IncludeAbstracted bool `json:"includeAbstracted,omitempty"`
}

// PipelineStageStatus reports one stage of a finished run.
type PipelineStageStatus struct {
	Stage string `json:"stage"`
	// Key is the stage's chain key: it commits to the log, the user
	// constraints, and every stage configuration up to this stage.
	Key string `json:"key"`
	// Cached reports the stage was adopted from the per-stage cache
	// instead of executed.
	Cached bool    `json:"cached"`
	Ms     float64 `json:"ms"`
}

// PipelineSuggestion is one ranked constraint proposal of a suggest stage.
type PipelineSuggestion struct {
	Constraint    string  `json:"constraint"`
	SingletonPass float64 `json:"singletonPass"`
	Rationale     string  `json:"rationale"`
}

// PipelineAbstraction summarises the abstract stage's outcome.
type PipelineAbstraction struct {
	Feasible      bool       `json:"feasible"`
	Distance      float64    `json:"distance,omitempty"`
	GroupClasses  [][]string `json:"groupClasses,omitempty"`
	ActivityNames []string   `json:"activityNames,omitempty"`
	Diagnostics   string     `json:"diagnostics,omitempty"`
}

// PipelineModel summarises the discovered process model.
type PipelineModel struct {
	Activities []string `json:"activities"`
	Edges      int      `json:"edges"`
	CFC        float64  `json:"cfc"`
	Size       int      `json:"size"`
}

// PipelineConformance reports the conform stage's evaluation.
type PipelineConformance struct {
	Fitness   float64              `json:"fitness"`
	Precision float64              `json:"precision"`
	Misfits   []conformance.Misfit `json:"misfits,omitempty"`
}

// PipelineResponse is the JSON result of POST /pipeline. Sections are
// present exactly when a stage produced them, so a filter-only pipeline
// returns just the stage statuses.
type PipelineResponse struct {
	Stages []PipelineStageStatus `json:"stages"`
	// Constraints is the active constraint set the run solved under —
	// echoed user constraints, or the suggest stage's adoptions.
	Constraints []string             `json:"constraints,omitempty"`
	Suggestions []PipelineSuggestion `json:"suggestions,omitempty"`
	Abstraction *PipelineAbstraction `json:"abstraction,omitempty"`
	Model       *PipelineModel       `json:"model,omitempty"`
	Conformance *PipelineConformance `json:"conformance,omitempty"`
	// Abstracted is the abstracted log (request format), only when asked
	// for with includeAbstracted.
	Abstracted string `json:"abstracted,omitempty"`
}

func handlePipeline(s *Service, w http.ResponseWriter, r *http.Request) {
	// Same load-shed as /abstract: reject before parsing up to 64 MiB when
	// no slot could run the stages anyway.
	if s.Busy() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrBusy)
		return
	}
	env, err := decodePipelineRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, format, err := buildPipelineRequest(env)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.RunPipeline(r.Context(), req)
	if err != nil {
		if errors.Is(err, ErrInvalidRequest) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if r.Context().Err() != nil {
				status = 499 // client closed request
			} else {
				status = http.StatusServiceUnavailable
			}
		}
		writeError(w, status, err)
		return
	}
	resp, err := buildPipelineResponse(out, format, env.IncludeAbstracted)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodePipelineRequest accepts either the JSON envelope or a raw XES/CSV
// body with the stage list in the stages query parameter (curl-friendly).
func decodePipelineRequest(r *http.Request) (*PipelineHTTPRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", maxBodyBytes)
	}
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		env := &PipelineHTTPRequest{}
		if err := json.Unmarshal(body, env); err != nil {
			return nil, fmt.Errorf("decoding JSON envelope: %w", err)
		}
		return env, nil
	}
	q := r.URL.Query()
	specs, err := pipeline.ParseSpecs(q.Get("stages"))
	if err != nil {
		return nil, err
	}
	return &PipelineHTTPRequest{
		Format:            q.Get("format"),
		Log:               string(body),
		Constraints:       q.Get("constraints"),
		Stages:            specs,
		IncludeAbstracted: q.Get("includeAbstracted") == "true",
	}, nil
}

// buildPipelineRequest parses the envelope into a service pipeline request
// plus the format to serialise any returned log in.
func buildPipelineRequest(env *PipelineHTTPRequest) (PipelineRequest, string, error) {
	format := strings.ToLower(env.Format)
	if format == "" {
		if strings.HasPrefix(strings.TrimSpace(env.Log), "<") {
			format = "xes"
		} else {
			format = "csv"
		}
	}
	var (
		log *eventlog.Log
		err error
	)
	switch format {
	case "xes":
		log, err = xes.Read(strings.NewReader(env.Log))
	case "csv":
		log, err = csvlog.Read(strings.NewReader(env.Log), csvlog.Options{})
	default:
		return PipelineRequest{}, "", fmt.Errorf("unknown format %q (want xes or csv)", env.Format)
	}
	if err != nil {
		return PipelineRequest{}, "", fmt.Errorf("parsing %s log: %w", format, err)
	}
	set, err := constraints.ParseSet(env.Constraints)
	if err != nil {
		return PipelineRequest{}, "", fmt.Errorf("parsing constraints: %w", err)
	}
	return PipelineRequest{Log: log, Constraints: set, Stages: env.Stages}, format, nil
}

func buildPipelineResponse(out *PipelineOutcome, format string, includeAbstracted bool) (*PipelineResponse, error) {
	resp := &PipelineResponse{Stages: make([]PipelineStageStatus, len(out.Stages))}
	for i, st := range out.Stages {
		resp.Stages[i] = PipelineStageStatus{
			Stage:  st.Stage,
			Key:    st.Key,
			Cached: st.Cached,
			Ms:     ms(st.Duration),
		}
	}
	state := out.State
	if state.Constraints != nil {
		for _, c := range state.Constraints.All() {
			resp.Constraints = append(resp.Constraints, c.String())
		}
	}
	for _, sg := range state.Suggestions {
		resp.Suggestions = append(resp.Suggestions, PipelineSuggestion{
			Constraint:    sg.Constraint.String(),
			SingletonPass: sg.SingletonPass,
			Rationale:     sg.Rationale,
		})
	}
	if res := state.Abstraction; res != nil {
		abs := &PipelineAbstraction{
			Feasible:      res.Feasible,
			Distance:      res.Distance,
			GroupClasses:  res.GroupClasses,
			ActivityNames: res.Grouping.Names,
		}
		if res.Diagnostics != nil {
			abs.Diagnostics = res.Diagnostics.String()
		}
		resp.Abstraction = abs
		if includeAbstracted && res.Feasible && res.Abstracted != nil {
			var b strings.Builder
			var err error
			if format == "csv" {
				err = csvlog.Write(&b, res.Abstracted)
			} else {
				err = xes.Write(&b, res.Abstracted)
			}
			if err != nil {
				return nil, fmt.Errorf("serialising abstracted log: %w", err)
			}
			resp.Abstracted = b.String()
		}
	}
	if m := state.Model; m != nil {
		resp.Model = &PipelineModel{
			Activities: m.Labels,
			Edges:      m.Graph.NumEdges(),
			CFC:        m.CFC(),
			Size:       m.Size(),
		}
	}
	if c := state.Conformance; c != nil {
		resp.Conformance = &PipelineConformance{
			Fitness:   c.Fitness,
			Precision: c.Precision,
			Misfits:   c.Misfits,
		}
	}
	return resp, nil
}

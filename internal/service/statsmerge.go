package service

import (
	"sort"
	"strings"
)

// ClusterStats is the /stats payload in sharded mode: the merged counters of
// every reachable shard (same shape as a single process's Stats, so
// dashboards work unchanged) plus a per-shard breakdown keyed by ring member
// ID. Unreachable shards are listed in Unreachable rather than silently
// dropped, so a partial aggregate is distinguishable from a healthy one.
type ClusterStats struct {
	Stats
	// Shards maps ring member ID -> that shard's own Stats.
	Shards map[string]Stats `json:"shards,omitempty"`
	// Unreachable lists member IDs whose /stats fan-out call failed; their
	// counters are absent from the merged totals.
	Unreachable []string `json:"unreachable,omitempty"`
}

// MergeStats combines the counters of two shards into cluster totals. It is
// commutative and associative with the zero Stats as identity — the
// properties a fan-out aggregator needs so the result does not depend on
// which shard answered first (pinned by test). Counters and occupancy sum;
// capacities sum too, because the cluster's capacity *is* the sum of its
// shards' (that aggregate growing linearly in members is the point of
// sharding). Disk directories merge as a set union since shards may share
// one warm tier or bring their own.
func MergeStats(a, b Stats) Stats {
	var out Stats

	out.Cache.Hits = a.Cache.Hits + b.Cache.Hits
	out.Cache.Misses = a.Cache.Misses + b.Cache.Misses
	out.Cache.Evictions = a.Cache.Evictions + b.Cache.Evictions
	out.Cache.Entries = a.Cache.Entries + b.Cache.Entries
	out.Cache.Capacity = a.Cache.Capacity + b.Cache.Capacity

	out.Sessions.Hits = a.Sessions.Hits + b.Sessions.Hits
	out.Sessions.Misses = a.Sessions.Misses + b.Sessions.Misses
	out.Sessions.Evictions = a.Sessions.Evictions + b.Sessions.Evictions
	out.Sessions.Entries = a.Sessions.Entries + b.Sessions.Entries
	out.Sessions.Capacity = a.Sessions.Capacity + b.Sessions.Capacity
	out.Sessions.IndexBytes = a.Sessions.IndexBytes + b.Sessions.IndexBytes
	out.Sessions.MappedBytes = a.Sessions.MappedBytes + b.Sessions.MappedBytes

	out.Streams.Live = a.Streams.Live + b.Streams.Live
	out.Streams.Capacity = a.Streams.Capacity + b.Streams.Capacity
	out.Streams.Created = a.Streams.Created + b.Streams.Created
	out.Streams.Closed = a.Streams.Closed + b.Streams.Closed
	out.Streams.Evicted = a.Streams.Evicted + b.Streams.Evicted
	out.Streams.Traces = a.Streams.Traces + b.Streams.Traces
	out.Streams.Regroupings = a.Streams.Regroupings + b.Streams.Regroupings
	out.Streams.Drifts = a.Streams.Drifts + b.Streams.Drifts

	out.Jobs.Started = a.Jobs.Started + b.Jobs.Started
	out.Jobs.Completed = a.Jobs.Completed + b.Jobs.Completed
	out.Jobs.Failed = a.Jobs.Failed + b.Jobs.Failed
	out.Jobs.Cancelled = a.Jobs.Cancelled + b.Jobs.Cancelled
	out.Jobs.Coalesced = a.Jobs.Coalesced + b.Jobs.Coalesced
	out.Jobs.Running = a.Jobs.Running + b.Jobs.Running
	out.Jobs.Queued = a.Jobs.Queued + b.Jobs.Queued

	out.Pipeline.Runs = a.Pipeline.Runs + b.Pipeline.Runs
	out.Pipeline.Entries = a.Pipeline.Entries + b.Pipeline.Entries
	out.Pipeline.Capacity = a.Pipeline.Capacity + b.Pipeline.Capacity
	out.Pipeline.Evictions = a.Pipeline.Evictions + b.Pipeline.Evictions
	out.Pipeline.Stages = mergeStageCounters(a.Pipeline.Stages, b.Pipeline.Stages)

	out.Disk = mergeDiskStats(a.Disk, b.Disk)
	return out
}

// mergeStageCounters sums per-stage hit/miss maps. A nil map is the
// identity: two nils stay nil (not an allocated empty map), so merging with
// the zero Stats reproduces the input exactly.
func mergeStageCounters(a, b map[string]StageCounters) map[string]StageCounters {
	if a == nil && b == nil {
		return nil
	}
	out := make(map[string]StageCounters, len(a)+len(b))
	for name, c := range a {
		out[name] = c
	}
	for name, c := range b {
		prev := out[name]
		prev.Hits += c.Hits
		prev.Misses += c.Misses
		out[name] = prev
	}
	return out
}

// mergeDiskStats sums warm-tier counters; nil (no disk tier) is the
// identity. Dir becomes the sorted, comma-joined union of both sides'
// directories — order-independent, so the merge stays commutative even when
// shards use distinct data dirs.
func mergeDiskStats(a, b *DiskStats) *DiskStats {
	if a == nil && b == nil {
		return nil
	}
	if a == nil {
		cp := *b
		return &cp
	}
	if b == nil {
		cp := *a
		return &cp
	}
	out := &DiskStats{
		Dir:            unionDirs(a.Dir, b.Dir),
		IndexFiles:     a.IndexFiles + b.IndexFiles,
		IndexBytes:     a.IndexBytes + b.IndexBytes,
		ResultFiles:    a.ResultFiles + b.ResultFiles,
		SpillWrites:    a.SpillWrites + b.SpillWrites,
		SpillErrors:    a.SpillErrors + b.SpillErrors,
		WarmOpens:      a.WarmOpens + b.WarmOpens,
		WarmOpenErrors: a.WarmOpenErrors + b.WarmOpenErrors,
		ResultsSaved:   a.ResultsSaved + b.ResultsSaved,
		ResultsLoaded:  a.ResultsLoaded + b.ResultsLoaded,
	}
	return out
}

// unionDirs merges comma-joined directory lists into a deduplicated, sorted,
// comma-joined set. Sorting makes the representation canonical, which is
// what keeps Dir merging commutative and associative.
func unionDirs(a, b string) string {
	seen := map[string]bool{}
	var dirs []string
	for _, part := range strings.Split(a+","+b, ",") {
		if part == "" || seen[part] {
			continue
		}
		seen[part] = true
		dirs = append(dirs, part)
	}
	sort.Strings(dirs)
	return strings.Join(dirs, ",")
}

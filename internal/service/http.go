package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gecco/internal/abstraction"
	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/csvlog"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/xes"
)

// maxBodyBytes caps uploaded log size (64 MiB).
const maxBodyBytes = 64 << 20

// AbstractRequest is the JSON envelope accepted by POST /abstract. Raw XES
// or CSV bodies are also accepted (see Handler), with the remaining fields
// read from query parameters of the same names.
type AbstractRequest struct {
	// Format of Log: "xes" or "csv"; default sniffs XES for bodies
	// starting with '<'.
	Format string `json:"format,omitempty"`
	// Log is the event log serialised in Format.
	Log string `json:"log"`
	// Constraints holds newline-separated constraint declarations.
	Constraints string `json:"constraints"`
	// ConstraintSets, when non-empty, turns the request into a batch: each
	// entry is a full constraint set (newline-separated declarations), and
	// all of them are solved against the one uploaded log — the log is
	// parsed once and the solves share a live session, so set 2..N start
	// with the log's index and a warm distance memo. Mutually exclusive
	// with Constraints and Async. In the raw-body form, repeat the
	// constraints query parameter instead.
	ConstraintSets []string `json:"constraintSets,omitempty"`
	// Mode is "exh", "dfg" (default), or "dfgk".
	Mode string `json:"mode,omitempty"`
	// BeamWidth tunes dfgk; 0 means the paper's 5·|C_L|.
	BeamWidth int `json:"beamWidth,omitempty"`
	// Workers caps pipeline parallelism; 0 uses the server default.
	Workers int `json:"workers,omitempty"`
	// MaxChecks bounds candidate computation; 0 means unlimited.
	MaxChecks int `json:"maxChecks,omitempty"`
	// Strategy is "completion" (default) or "start-complete".
	Strategy string `json:"strategy,omitempty"`
	// Policy is "split" (default) or "whole".
	Policy string `json:"policy,omitempty"`
	// Solver is "bb" (default) or "mip".
	Solver string `json:"solver,omitempty"`
	// NamePrefix labels multi-class activities; default "Activity ".
	NamePrefix string `json:"namePrefix,omitempty"`
	// NameByClassAttr prefixes activity labels with the group's unique
	// value of this class-level attribute.
	NameByClassAttr string `json:"nameByClassAttr,omitempty"`
	// Async returns 202 with a job ID instead of blocking; poll
	// GET /jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
	// OmitAbstracted drops the serialised abstracted log from the
	// response, leaving the grouping, distance, and counters — for callers
	// that only want the metrics, the serialisation is most of the
	// response's cost and nearly all of its bytes. A pure rendering
	// choice: it never affects the result cache key, and a poller can make
	// it per-poll with ?abstracted=false on GET /jobs/{id}. In the
	// raw-body form, pass abstracted=false as a query parameter.
	OmitAbstracted bool `json:"omitAbstracted,omitempty"`
}

// AbstractResponse is the JSON result of a finished abstraction.
type AbstractResponse struct {
	JobID     string `json:"jobId,omitempty"`
	State     string `json:"state,omitempty"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced,omitempty"`

	Feasible           bool       `json:"feasible"`
	Distance           float64    `json:"distance,omitempty"`
	GroupClasses       [][]string `json:"groupClasses,omitempty"`
	ActivityNames      []string   `json:"activityNames,omitempty"`
	NumCandidates      int        `json:"numCandidates"`
	CandidatesTimedOut bool       `json:"candidatesTimedOut,omitempty"`
	ConstraintChecks   int        `json:"constraintChecks"`
	Diagnostics        string     `json:"diagnostics,omitempty"`
	// Abstracted is the abstracted log, serialised in the request format.
	Abstracted string `json:"abstracted,omitempty"`
	TimingsMs  struct {
		Candidates float64 `json:"candidates"`
		Solve      float64 `json:"solve"`
		Abstract   float64 `json:"abstract"`
	} `json:"timingsMs"`
}

// BatchItem is one constraint set's outcome within a batch response.
type BatchItem struct {
	// Constraints echoes the set this item answers, so clients need not
	// rely on ordering alone.
	Constraints string `json:"constraints"`
	AbstractResponse
	// Error is set when this set's pipeline run failed; the other items are
	// unaffected.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the JSON result of a batch POST /abstract.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /abstract             run (or serve from cache) an abstraction
//	POST /pipeline             run a staged pipeline (filter, suggest,
//	                           abstract, discover, conform) with per-stage
//	                           caching; ?stages= carries the JSON stage list
//	GET  /jobs/{id}            poll a job
//	POST /jobs/{id}/cancel     cancel a queued or running job (asynchronous:
//	                           the response may still show it running; poll)
//	POST /stream               online abstraction: NDJSON traces in,
//	                           abstracted NDJSON out; ?stream= names a
//	                           persistent stream (create-or-append)
//	GET  /stream/{name}        snapshot a named stream
//	POST /stream/{name}/close  drop a named stream's state
//	GET  /healthz              liveness (200 while the process runs)
//	GET  /readyz               readiness (503 while draining, so routers
//	                           take the shard out of rotation)
//	GET  /stats                cache, session, stream, and job counters
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /abstract", func(w http.ResponseWriter, r *http.Request) { handleAbstract(s, w, r) })
	mux.HandleFunc("POST /pipeline", func(w http.ResponseWriter, r *http.Request) { handlePipeline(s, w, r) })
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleJob(s, w, r) })
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) { handleCancel(s, w, r) })
	mux.HandleFunc("POST /stream", func(w http.ResponseWriter, r *http.Request) { handleStream(s, w, r) })
	mux.HandleFunc("GET /stream/{name}", func(w http.ResponseWriter, r *http.Request) { handleStreamGet(s, w, r) })
	mux.HandleFunc("POST /stream/{name}/close", func(w http.ResponseWriter, r *http.Request) { handleStreamClose(s, w, r) })
	// Liveness and readiness are deliberately split: /healthz answers "is
	// the process alive" (restart me if not) and stays 200 through a drain,
	// while /readyz answers "should I receive new work" and flips to 503 the
	// moment StartDrain is called — so an orchestrator drains a shard without
	// killing its in-flight jobs.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func handleAbstract(s *Service, w http.ResponseWriter, r *http.Request) {
	// Load-shed before reading and parsing up to 64 MiB of body: when the
	// queue is full the request would be rejected anyway (cache hits and
	// coalescing joins can slip through after a retry — they are cheap).
	if s.Busy() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrBusy)
		return
	}
	env, err := decodeAbstractRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(env.ConstraintSets) > 0 {
		handleBatch(s, w, r, env)
		return
	}
	req, format, err := buildRequest(s, env)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if env.Async {
		snap, err := s.Submit(req)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
				w.Header().Set("Retry-After", "1")
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, AbstractResponse{JobID: snap.ID, State: string(snap.State)})
		return
	}

	// The request context carries client disconnects: an abandoned last
	// waiter cancels the pipeline mid-frontier.
	res, meta, err := s.Do(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrInvalidRequest) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if r.Context().Err() != nil {
				// The client went away: 499 is nginx's "client closed
				// request"; the response is unlikely to be seen, but logs
				// and tests observe the status.
				status = 499
			} else {
				// Server-side cancellation (admin cancel of a coalesced
				// job, shutdown) while the client is still connected.
				status = http.StatusServiceUnavailable
			}
		}
		writeError(w, status, err)
		return
	}
	resp, err := buildResponse(res, format, env.OmitAbstracted)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp.Cached = meta.Cached
	resp.Coalesced = meta.CoalescedInto
	resp.JobID = meta.JobID
	resp.State = string(StateDone)
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch solves every constraint set of the envelope against the one
// uploaded log. The log is parsed once; the solves run sequentially through
// the ordinary job machinery, so each can hit the result cache, coalesce
// with identical in-flight requests, and — crucially — sets 2..N reuse the
// live session the first solve admitted, skipping re-indexing and starting
// with a warm distance memo. Per-set failures are reported in place; they
// do not abort the rest of the batch.
func handleBatch(s *Service, w http.ResponseWriter, r *http.Request, env *AbstractRequest) {
	if env.Async {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch requests cannot be async; poll per-set jobs individually instead"))
		return
	}
	if strings.TrimSpace(env.Constraints) != "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("use either constraints or constraintSets, not both"))
		return
	}
	base, format, err := buildRequest(s, env)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// buildRequest filled the digest (parsing at most once), so every
	// per-set request copy inherits it: N sets cost one SHA-256 pass and at
	// most one parse — zero parses when the wire-digest memo already knows
	// this upload.
	// Parse every set up front: a malformed set is the client's mistake and
	// fails the whole batch with 400 before any pipeline run is paid for.
	sets := make([]*constraints.Set, len(env.ConstraintSets))
	for i, text := range env.ConstraintSets {
		set, err := constraints.ParseSet(text)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("constraint set %d: %w", i+1, err))
			return
		}
		sets[i] = set
	}
	resp := BatchResponse{Results: make([]BatchItem, len(sets))}
	for i, set := range sets {
		item := &resp.Results[i]
		item.Constraints = env.ConstraintSets[i]
		req := base
		req.Constraints = set
		res, meta, err := s.Do(r.Context(), req)
		if err != nil {
			item.Error = err.Error()
			continue
		}
		built, err := buildResponse(res, format, env.OmitAbstracted)
		if err != nil {
			item.Error = err.Error()
			continue
		}
		built.Cached = meta.Cached
		built.Coalesced = meta.CoalescedInto
		built.JobID = meta.JobID
		built.State = string(StateDone)
		item.AbstractResponse = *built
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleJob(s *Service, w http.ResponseWriter, r *http.Request) {
	format := strings.ToLower(r.URL.Query().Get("format"))
	if format != "" && format != "xes" && format != "csv" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want xes or csv)", format))
		return
	}
	q := r.URL.Query().Get("abstracted")
	snap, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJobSnapshot(w, snap, format, q == "false" || q == "0")
}

func handleCancel(s *Service, w http.ResponseWriter, r *http.Request) {
	snap, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJobSnapshot(w, snap, "", false)
}

// writeJobSnapshot renders a job; formatOverride lets a poller that
// coalesced onto a job submitted in the other wire format (the job's tag
// records the first submitter's) ask for its own via ?format=;
// omitAbstracted (?abstracted=false) drops the serialised log per poll.
func writeJobSnapshot(w http.ResponseWriter, snap JobSnapshot, formatOverride string, omitAbstracted bool) {
	resp := AbstractResponse{JobID: snap.ID, State: string(snap.State)}
	format := formatOverride
	if format == "" {
		format = snap.Tag
	}
	if format == "" {
		format = "xes"
	}
	if snap.State == StateDone && snap.Result != nil {
		built, err := buildResponse(snap.Result, format, omitAbstracted)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		built.JobID = snap.ID
		built.State = string(snap.State)
		resp = *built
	} else if snap.State == StateDone && snap.ResultEvicted {
		writeJSON(w, http.StatusGone, struct {
			AbstractResponse
			Error string `json:"error"`
		}{resp, "result evicted from job retention; re-POST the request (cached results are served instantly)"})
		return
	} else if snap.Err != nil {
		// A failed pipeline is a 500 so status-code-only pollers notice;
		// cancellation is a client-requested outcome and stays 200.
		status := http.StatusOK
		if snap.State == StateFailed {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, struct {
			AbstractResponse
			Error string `json:"error"`
		}{resp, snap.Err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeAbstractRequest accepts either the JSON envelope or a raw XES/CSV
// body with query-parameter settings (curl-friendly).
func decodeAbstractRequest(r *http.Request) (*AbstractRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", maxBodyBytes)
	}
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		env := &AbstractRequest{}
		if err := json.Unmarshal(body, env); err != nil {
			return nil, fmt.Errorf("decoding JSON envelope: %w", err)
		}
		return env, nil
	}
	q := r.URL.Query()
	env := &AbstractRequest{
		Format:          q.Get("format"),
		Log:             string(body),
		Constraints:     q.Get("constraints"),
		Mode:            q.Get("mode"),
		Strategy:        q.Get("strategy"),
		Policy:          q.Get("policy"),
		Solver:          q.Get("solver"),
		NamePrefix:      q.Get("namePrefix"),
		NameByClassAttr: q.Get("nameByClassAttr"),
		Async:           q.Get("async") == "true",
		OmitAbstracted:  q.Get("abstracted") == "false" || q.Get("abstracted") == "0",
	}
	// A repeated constraints parameter is the raw-body batch form: each
	// value is a full constraint set, all solved against the one body.
	if cons := q["constraints"]; len(cons) > 1 {
		env.Constraints = ""
		env.ConstraintSets = cons
	}
	// Malformed numbers are a 400, not a silent zero: maxChecks=10k
	// falling back to 0 would mean *unlimited* budget.
	for _, p := range []struct {
		name string
		dst  *int
	}{{"beamWidth", &env.BeamWidth}, {"workers", &env.Workers}, {"maxChecks", &env.MaxChecks}} {
		raw := q.Get(p.name)
		if raw == "" {
			continue
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			return nil, fmt.Errorf("query parameter %s=%q is not an integer", p.name, raw)
		}
		*p.dst = n
	}
	return env, nil
}

// buildRequest parses the envelope into a service request plus the format
// to serialise the response log in. The log itself parses lazily behind
// the service's wire-digest memo: when a byte-identical upload has been
// parsed before, the request carries only its canonical digest and a
// loader, so a result-cache hit — or a live/warm-opened session — never
// re-reads the XES/CSV at all. Parse errors on that path are impossible
// by construction: the memo is only populated after a successful parse,
// and parsing is deterministic.
func buildRequest(s *Service, env *AbstractRequest) (Request, string, error) {
	format := strings.ToLower(env.Format)
	if format == "" {
		if strings.HasPrefix(strings.TrimSpace(env.Log), "<") {
			format = "xes"
		} else {
			format = "csv"
		}
	}
	if format != "xes" && format != "csv" {
		return Request{}, "", fmt.Errorf("unknown format %q (want xes or csv)", env.Format)
	}
	// One parse-once loader shared by every per-set copy of a batch
	// request: whichever copy needs the events first pays the parse, the
	// rest reuse it.
	var (
		parseOnce sync.Once
		parsed    *eventlog.Log
		parseErr  error
	)
	text := env.Log
	load := func() (*eventlog.Log, error) {
		//lint:gecco-allow(oncesafe): a fresh Once per request is the point — every per-set copy of this one request shares the closure (and so this Once); single-flight across requests is the wire memo's job, not this loader's
		parseOnce.Do(func() {
			if format == "xes" {
				parsed, parseErr = xes.Read(strings.NewReader(text))
			} else {
				parsed, parseErr = csvlog.Read(strings.NewReader(text), csvlog.Options{})
			}
			if parseErr != nil {
				parseErr = fmt.Errorf("parsing %s log: %w", format, parseErr)
			}
		})
		return parsed, parseErr
	}
	set, err := constraints.ParseSet(env.Constraints)
	if err != nil {
		return Request{}, "", fmt.Errorf("parsing constraints: %w", err)
	}
	cfg := core.Config{
		BeamWidth:       env.BeamWidth,
		Workers:         env.Workers,
		Budget:          candidates.Budget{MaxChecks: env.MaxChecks},
		NamePrefix:      env.NamePrefix,
		NameByClassAttr: env.NameByClassAttr,
	}
	cfg.Mode, err = parseMode(env.Mode)
	if err != nil {
		return Request{}, "", err
	}
	switch strings.ToLower(env.Strategy) {
	case "", "completion":
		cfg.Strategy = abstraction.CompletionOnly
	case "start-complete":
		cfg.Strategy = abstraction.StartComplete
	default:
		return Request{}, "", fmt.Errorf("unknown strategy %q", env.Strategy)
	}
	switch strings.ToLower(env.Policy) {
	case "", "split":
		cfg.Policy = instances.SplitOnRepeat
	case "whole":
		cfg.Policy = instances.WholeTrace
	default:
		return Request{}, "", fmt.Errorf("unknown policy %q", env.Policy)
	}
	switch strings.ToLower(env.Solver) {
	case "", "bb":
		cfg.Solver = core.SolverBB
	case "mip":
		cfg.Solver = core.SolverMIP
	default:
		return Request{}, "", fmt.Errorf("unknown solver %q (want bb or mip)", env.Solver)
	}
	req := Request{Constraints: set, Config: cfg, Tag: format, loadLog: load}
	wk := wireKey(format, text)
	if d, ok := s.wire.get(wk); ok {
		req.digest = d
		return req, format, nil
	}
	log, err := load()
	if err != nil {
		return Request{}, "", err
	}
	req.Log = log
	// Empty logs are rejected by validation, so memoising one would let a
	// later byte-identical upload dodge that check via the lazy path.
	if len(log.Traces) > 0 {
		s.wire.put(wk, req.logDigest())
	}
	return req, format, nil
}

// parseMode maps the wire spelling of a candidate mode onto core.Mode.
func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "", "dfg", "dfg-unbounded":
		return core.DFGUnbounded, nil
	case "exh", "exhaustive":
		return core.Exhaustive, nil
	case "dfgk", "beam", "dfg-beam":
		return core.DFGBeam, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want exh, dfg, or dfgk)", s)
	}
}

func buildResponse(res *JobResult, format string, omitAbstracted bool) (*AbstractResponse, error) {
	resp := &AbstractResponse{
		Feasible:           res.Feasible,
		Distance:           res.Distance,
		GroupClasses:       res.GroupClasses,
		ActivityNames:      res.Grouping.Names,
		NumCandidates:      res.NumCandidates,
		CandidatesTimedOut: res.CandidatesTimedOut,
		ConstraintChecks:   res.ConstraintChecks,
	}
	resp.TimingsMs.Candidates = ms(res.Timings.Candidates)
	resp.TimingsMs.Solve = ms(res.Timings.Solve)
	resp.TimingsMs.Abstract = ms(res.Timings.Abstract)
	if res.Diagnostics != nil {
		resp.Diagnostics = res.Diagnostics.String()
	}
	if res.Abstracted != nil && !omitAbstracted {
		var b strings.Builder
		var err error
		if format == "csv" {
			err = csvlog.Write(&b, res.Abstracted)
		} else {
			err = xes.Write(&b, res.Abstracted)
		}
		if err != nil {
			return nil, fmt.Errorf("serialising abstracted log: %w", err)
		}
		resp.Abstracted = b.String()
	}
	return resp, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

package service

import (
	"container/list"
	"errors"
	"sort"
	"sync"

	"gecco/internal/core"
	"gecco/internal/eventlog"
)

// SessionStats aggregates the session cache's counters for /stats. A hit
// means a request on a known log skipped parsing-independent analysis
// (indexing, DFG construction) and started with a warm distance memo.
type SessionStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	// IndexBytes is the summed estimated heap footprint the live sessions
	// pin: each session's columnar index (class arenas, attribute columns,
	// dictionaries, bitsets) plus, for sessions that have served an
	// infeasible solve, the lazily materialised log copy. Sessions release
	// their parsed *Log at construction, so this is the whole per-log
	// retention, not an addition to it.
	IndexBytes int64 `json:"indexBytes"`
	// MappedBytes is the summed size of file-backed index mappings pinned by
	// live sessions that were warm-opened from the disk tier. These pages are
	// not Go heap (the kernel reclaims them under pressure), which is why they
	// are reported separately from IndexBytes rather than folded in.
	MappedBytes int64 `json:"mappedBytes"`
}

// sessionEntry is one cached live session. The done channel coalesces
// concurrent first requests for the same log onto a single index build: the
// creator closes it after the build, latecomers block on it in getOrCreate.
// Only the creator writes session/err — under the cache mutex (drop reads
// session under the same mutex) and before closing done, so latecomers that
// return from the receive see a consistent pair.
type sessionEntry struct {
	digest  string
	done    chan struct{}
	session *core.Session
	err     error
}

// sessionCache is an LRU of live core.Sessions keyed by log digest. It sits
// *under* the result cache: a result hit never reaches it, a result miss on
// a known log reuses the session's frozen artifacts and warm distance memo.
// Unlike the sharded result cache it is a single-segment LRU — entries are
// few (each pins a parsed log, its index, and its memos) and lookups are
// amortised by a full pipeline run, so exact LRU order beats shard-level
// concurrency here.
type sessionCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
	// store, when non-nil, is the warm tier: evicted sessions spill their
	// index to disk, and misses try OpenIndex before re-parsing. Evicted
	// indexes are never explicitly Closed — in-flight jobs may still hold the
	// session — so mapped files are released by the finalizer once the last
	// reference drops.
	store *diskStore
}

func newSessionCache(capacity int, store *diskStore) *sessionCache {
	return &sessionCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		store:   store,
	}
}

// getOrCreate returns the live session for the log digest, building and
// caching it on first use. Concurrent callers for the same new digest share
// one build. A build error is not cached: the entry is removed so the next
// request retries. The log arrives as a loader, not a value: when the
// session is live or its index warm-opens from the spill tier, the upload
// is never parsed at all (see the wire-digest memo).
func (c *sessionCache) getOrCreate(digest string, load func() (*eventlog.Log, error)) (*core.Session, error) {
	return c.getOrCreateFrom(digest, func() (*core.Session, error) {
		if c.store != nil {
			if x, ok := c.store.openIndex(digest); ok {
				if s, serr := core.NewSessionFromIndex(x); serr == nil {
					return s, nil
				}
				x.Close()
			}
		}
		log, err := load()
		if err != nil {
			return nil, err
		}
		return core.NewSession(log)
	})
}

// getOrCreateIndex is getOrCreate for callers that already hold a columnar
// index (the pipeline engine's possibly-filtered working views, keyed by
// their derivation chain): on a miss the session wraps the index directly —
// after trying a warm-open of a previously spilled copy — so filtered logs
// join the same LRU, spill tier, and coalescing as uploaded ones.
func (c *sessionCache) getOrCreateIndex(key string, x *eventlog.Index) (*core.Session, error) {
	return c.getOrCreateFrom(key, func() (*core.Session, error) {
		if c.store != nil {
			if fx, ok := c.store.openIndex(key); ok {
				if s, serr := core.NewSessionFromIndex(fx); serr == nil {
					return s, nil
				}
				fx.Close()
			}
		}
		return core.NewSessionFromIndex(x)
	})
}

// getOrCreateFrom returns the live session for the digest, building it via
// mk on first use. Concurrent callers for the same new digest share one
// build. A build error is not cached: the entry is removed so the next
// request retries.
func (c *sessionCache) getOrCreateFrom(digest string, mk func() (*core.Session, error)) (*core.Session, error) {
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		c.order.MoveToFront(el)
		c.hits++
		e := el.Value.(*sessionEntry)
		c.mu.Unlock()
		<-e.done // wait for an in-flight first build
		return e.session, e.err
	}
	c.misses++
	e := &sessionEntry{digest: digest, done: make(chan struct{})}
	c.entries[digest] = c.order.PushFront(e)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*sessionEntry)
		delete(c.entries, old.digest)
		c.evictions++
		c.spillLocked(old)
	}
	c.mu.Unlock()

	return c.build(e, digest, mk)
}

// spillLocked hands an evicted entry's index to the warm tier, so the next
// request for the log costs an OpenIndex instead of a re-parse. Called with
// c.mu held (session is published under it); the write itself runs on a
// store goroutine. Entries still building (session nil) have nothing to
// spill — their build survives eviction and publishes to latecomers, it is
// just not re-admitted.
func (c *sessionCache) spillLocked(e *sessionEntry) {
	if c.store != nil && e.session != nil {
		c.store.spillIndexAsync(e.digest, e.session.Index())
	}
}

// build constructs the session for a fresh entry via mk and publishes the
// outcome. The deferred publish runs even if mk panics (converting the
// panic into an error for latecomers before it propagates), so a caller
// that recovers — net/http handler recovery, say — cannot strand other
// goroutines blocked on the entry's done channel. A failed build is removed
// from the cache so the next request retries; the identity check guards
// against the entry having been evicted and replaced meanwhile.
//
// The mk closures passed by getOrCreate/getOrCreateIndex try the warm tier
// first: a previously spilled index is opened from disk (mmap, no parse, no
// build) and only the digest's first-ever build pays full price. A corrupt
// or unreadable file falls back to the cold path — openIndex already
// deleted it, so the fallback's eventual eviction re-spills a good copy.
func (c *sessionCache) build(e *sessionEntry, digest string, mk func() (*core.Session, error)) (sess *core.Session, err error) {
	defer func() {
		if sess == nil && err == nil {
			err = errors.New("service: session build panicked")
		}
		c.mu.Lock()
		e.session, e.err = sess, err
		if err != nil {
			if el, ok := c.entries[digest]; ok && el.Value.(*sessionEntry) == e {
				c.order.Remove(el)
				delete(c.entries, digest)
			}
		}
		c.mu.Unlock()
		close(e.done)
	}()
	return mk()
}

// peek returns the digest's live session when one exists, bumping recency,
// without admitting an entry on miss — the streaming workload's regroup
// windows are almost always fresh digests, and inserting each would churn
// the /abstract workload's few, expensive entries out of the LRU. Neither a
// miss nor a hit disturbs the hit/miss counters' meaning: a peek hit is a
// genuine session reuse and is counted; a miss is not a failed admission
// and is not.
func (c *sessionCache) peek(digest string) (*core.Session, bool) {
	c.mu.Lock()
	el, ok := c.entries[digest]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	e := el.Value.(*sessionEntry)
	c.mu.Unlock()
	<-e.done // wait for an in-flight first build
	if e.err != nil || e.session == nil {
		return nil, false
	}
	return e.session, true
}

// drop removes the digest's entry if it still holds the given session (a
// fresh session may already have replaced it), counting the removal as an
// eviction. Used to retire sessions whose memos outgrew the configured
// bound.
func (c *sessionCache) drop(digest string, sess *core.Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[digest]
	if !ok || el.Value.(*sessionEntry).session != sess {
		return
	}
	c.order.Remove(el)
	delete(c.entries, digest)
	c.evictions++
	// A retired session's index is unchanged (only its memo grew), so it
	// still warms the next rebuild.
	c.spillLocked(el.Value.(*sessionEntry))
}

// spillAll writes every live session's index to the warm tier. Called on
// shutdown so a restarted process warm-opens its whole working set; spills
// of already-persisted digests are no-ops.
func (c *sessionCache) spillAll() {
	if c.store == nil {
		return
	}
	c.mu.Lock()
	sessions := make([]*sessionEntry, 0, len(c.entries))
	for _, el := range c.entries {
		if e := el.Value.(*sessionEntry); e.session != nil {
			sessions = append(sessions, e)
		}
	}
	c.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].digest < sessions[j].digest })
	for _, e := range sessions {
		c.store.spillIndex(e.digest, e.session.Index())
	}
}

// Stats snapshots the session cache counters, including the estimated bytes
// pinned by live indexes. Entries still building (session published under
// this same mutex) contribute nothing until their build completes.
func (c *sessionCache) Stats() SessionStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := SessionStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Capacity:  c.cap,
	}
	for _, el := range c.entries {
		if e := el.Value.(*sessionEntry); e.session != nil {
			st.IndexBytes += e.session.EstimatedBytes()
			st.MappedBytes += e.session.MappedBytes()
		}
	}
	return st
}

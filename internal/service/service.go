// Package service is the serving layer over the GECCO pipeline: a job
// manager running a bounded number of concurrent abstraction jobs, a
// sharded LRU cache of results keyed by log digest + canonicalised
// constraint set + config, and coalescing of identical in-flight requests
// onto a single pipeline run.
//
// Under the result cache sits a two-tier session cache. The hot tier is an
// in-RAM LRU of live core.Sessions keyed by log digest: a request on a
// known log reuses its frozen index, DFG, and warm distance memo. With
// Options.DataDir set, a warm tier persists under that directory: evicted
// sessions spill their columnar index to disk (docs/FORMAT.md) and are
// rebuilt via eventlog.OpenIndex — pure IO — instead of re-parsing;
// feasible cacheable results are written through and reloaded at startup;
// Close spills the whole working set so a restart comes up warm. The disk
// tier is strictly a cache: every file is checksummed, and corruption
// falls back to the cold path. docs/ARCHITECTURE.md diagrams the flow.
//
// Cancellation is cooperative end to end: every job runs under a context
// derived from the service's base context, a synchronous caller that goes
// away (client disconnect, timeout) cancels the job when it was its last
// waiter, and shutting the service down cancels everything mid-frontier
// via core.RunContext.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
)

// JobResult is the pipeline outcome stored in the cache and on finished
// jobs; it is the core pipeline result as-is.
type JobResult = core.Result

// Options tunes the service; zero values pick serving-friendly defaults.
type Options struct {
	// MaxConcurrent bounds the number of pipeline runs executing at once;
	// further jobs queue. <= 0 means one per CPU.
	MaxConcurrent int
	// MaxQueued bounds the jobs waiting for a concurrency slot; beyond it
	// new non-coalescing requests are rejected with ErrBusy (HTTP 503) as
	// backpressure — each queued job pins its parsed log in memory.
	// <= 0 means 4×MaxConcurrent.
	MaxQueued int
	// CacheCapacity is the number of results the LRU retains; <= 0 means
	// the default (256). Use NoCache to disable caching.
	CacheCapacity int
	// NoCache disables the result cache entirely.
	NoCache bool
	// MaxRetainedJobs bounds the finished jobs kept for GET /jobs/{id}
	// lookups; the oldest finished jobs are dropped first. <= 0 means 1024.
	MaxRetainedJobs int
	// MaxRetainedResults bounds how many of those finished jobs keep their
	// full result (which includes the abstracted log — potentially tens of
	// MiB each). Older finished jobs keep their metadata but drop the
	// result; cacheable ones remain servable from the LRU by re-POSTing.
	// <= 0 means 64.
	MaxRetainedResults int
	// SessionCapacity bounds the LRU of live per-log sessions (index, DFG,
	// warm distance memo) kept under the result cache, so a repeat log with
	// fresh constraints skips the constraint-independent analysis. Each
	// session pins its parsed log and memos in memory. <= 0 means 16; use
	// NoSessions to disable.
	SessionCapacity int
	// NoSessions disables the session cache: every job rebuilds its log's
	// analysis state from scratch, as before the session engine.
	NoSessions bool
	// SessionMemoLimit retires a live session once its distance memo holds
	// more than this many entries. The memo grows with every distinct
	// candidate group ever costed and is never evicted — the price of warm
	// solves — so without a bound, a hot log's session on a long-running
	// server would grow monotonically. A retired session is simply dropped;
	// the next request on that log rebuilds a fresh one. <= 0 means the
	// default (1<<18 ≈ 262k entries, tens of MB on typical class counts).
	SessionMemoLimit int
	// MaxStreams bounds the named online-abstractor states kept live for
	// POST /stream (each pins a window of traces plus its grouping).
	// Creating a stream beyond the bound evicts the least recently used
	// one. <= 0 means 64; use NoStreams to disable the endpoint.
	MaxStreams int
	// NoStreams disables the streaming workload entirely.
	NoStreams bool
	// PipelineCacheCapacity bounds the per-stage state LRU behind POST
	// /pipeline (each entry pins the indexes a pipeline state carries).
	// <= 0 means 64; NoCache disables it together with the result cache.
	PipelineCacheCapacity int
	// DefaultWorkers is the per-job worker count applied when a request
	// leaves Config.Workers at 0; 0 keeps the pipeline default (all CPUs).
	DefaultWorkers int
	// DataDir, when set, enables the warm tier: sessions evicted from the
	// in-RAM LRU spill their columnar index to <DataDir>/index/<digest>.gidx
	// (rebuilt later via OpenIndex instead of re-parsing), feasible cacheable
	// results persist to <DataDir>/results/ and are reloaded into the result
	// cache at startup, and Close spills every live session so a restart
	// warm-opens its working set. Empty keeps the service purely in-memory.
	// The directory is created if missing; if it cannot be, persistence is
	// disabled with a note on stderr and the service runs in-memory.
	DataDir string
	// JobIDPrefix is prepended to generated job IDs ("job-1" becomes
	// "<prefix>job-1"). In a sharded cluster each shard sets a distinct
	// prefix ("s0-", "s1-", ...) so a job ID names its owning shard and the
	// router can forward GET /jobs/{id} polls without a lookup table. Empty
	// keeps the classic unprefixed IDs.
	JobIDPrefix string
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.NumCPU()
	}
	if o.MaxQueued <= 0 {
		o.MaxQueued = 4 * o.MaxConcurrent
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 256
	}
	if o.NoCache {
		o.CacheCapacity = 0
	}
	if o.MaxRetainedJobs <= 0 {
		o.MaxRetainedJobs = 1024
	}
	if o.MaxRetainedResults <= 0 {
		o.MaxRetainedResults = 64
	}
	if o.SessionCapacity <= 0 {
		o.SessionCapacity = 16
	}
	if o.NoSessions {
		o.SessionCapacity = 0
	}
	if o.SessionMemoLimit <= 0 {
		o.SessionMemoLimit = 1 << 18
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 64
	}
	if o.NoStreams {
		o.MaxStreams = 0
	}
	if o.PipelineCacheCapacity <= 0 {
		o.PipelineCacheCapacity = 64
	}
	if o.NoCache {
		o.PipelineCacheCapacity = 0
	}
	return o
}

// Request is one abstraction problem: a log, a parsed constraint set, and a
// pipeline configuration.
type Request struct {
	Log         *eventlog.Log
	Constraints *constraints.Set
	Config      core.Config
	// Tag is opaque caller metadata echoed on job snapshots; the HTTP
	// layer records the request's wire format here so async polls can
	// serialise the result the way the submitter sent it. Coalesced jobs
	// keep the first submitter's tag (HTTP pollers can override with
	// ?format=). It does not participate in the cache key.
	Tag string
	// digest memoises LogDigest(Log) so a batch solving N constraint sets
	// against one log hashes it once, not N times. Filled lazily inside the
	// service; external callers leave it empty.
	digest string
	// loadLog, when non-nil, parses the uploaded log on demand. The HTTP
	// layer sets it together with a pre-known digest (via the wire-digest
	// memo) and leaves Log nil, so requests served from the result cache —
	// or from a warm-opened spilled index — never pay the parse. Invariant:
	// either Log is non-nil or digest is non-empty.
	loadLog func() (*eventlog.Log, error)
}

// logDigest returns the request's memoised log digest, computing it on
// first use.
func (r *Request) logDigest() string {
	if r.digest == "" {
		r.digest = LogDigest(r.Log)
	}
	return r.digest
}

// log returns the parsed event log, invoking the lazy loader on first use.
func (r *Request) log() (*eventlog.Log, error) {
	if r.Log == nil && r.loadLog != nil {
		l, err := r.loadLog()
		if err != nil {
			return nil, err
		}
		r.Log = l
	}
	return r.Log, nil
}

// JobState enumerates a job's lifecycle.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Job is one tracked pipeline run. All mutable fields are guarded by the
// service mutex; callers observe jobs through Snapshot.
type Job struct {
	id     string
	key    string // request key; "" when the request is not cacheable
	tag    string
	state  JobState
	result *JobResult
	// resultEvicted marks a done job whose result was dropped by the
	// retained-results bound; cacheable results remain fetchable via the
	// LRU by re-POSTing the request.
	resultEvicted bool
	err           error
	created       time.Time
	started       time.Time
	ended         time.Time

	waiters  int // synchronous callers currently waiting
	detached bool
	// cacheBacked marks a job synthesised from a cache hit: its result
	// aliases the LRU entry, so dropping it would free nothing and it is
	// exempt from the retained-results accounting.
	cacheBacked bool
	cancel      context.CancelFunc
	done        chan struct{}
}

// JobSnapshot is an immutable view of a job.
type JobSnapshot struct {
	ID    string
	Tag   string
	State JobState
	// Result is nil on a done job when ResultEvicted is set.
	Result        *JobResult
	ResultEvicted bool
	Err           error
	Created       time.Time
	Started       time.Time
	Ended         time.Time
	Coalesce      int // waiters sharing the run when snapshotted
}

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("service: job not found")

// ErrBusy is returned when the queue of jobs waiting for a concurrency
// slot is full; the caller should retry later.
var ErrBusy = errors.New("service: job queue full")

// ErrInvalidRequest marks client-input validation failures (HTTP 400, not
// 500).
var ErrInvalidRequest = errors.New("service: invalid request")

// ErrClosed is returned for requests arriving during or after Close.
var ErrClosed = errors.New("service: shutting down")

// JobStats counts job outcomes since the service started.
type JobStats struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Coalesced int64 `json:"coalesced"` // requests that joined an in-flight identical run
	Running   int   `json:"running"`
	Queued    int   `json:"queued"`
}

// Stats is the /stats payload.
type Stats struct {
	Cache CacheStats `json:"cache"`
	// Sessions reports the session-cache layer under the result cache: hits
	// are jobs that reused a live per-log session (warm index and distance
	// memo) instead of rebuilding it.
	Sessions SessionStats `json:"sessions"`
	// Streams reports the online workload: live named streams, lifecycle
	// counts, and arrival/regrouping totals across all streams ever served.
	Streams StreamStats `json:"streams"`
	Jobs    JobStats    `json:"jobs"`
	// Pipeline reports the staged-run engine: per-stage cache hit/miss
	// counters and the state LRU's occupancy.
	Pipeline PipelineStats `json:"pipeline"`
	// Disk reports the warm tier under the data dir; nil when DataDir is
	// unset (or its store could not be opened).
	Disk *DiskStats `json:"disk,omitempty"`
}

// Service runs abstraction jobs with bounded concurrency, caching, and
// request coalescing. Create with New; Close cancels everything.
type Service struct {
	opts     Options
	cache    *Cache
	sessions *sessionCache  // nil when NoSessions
	streams  *streamManager // nil when NoStreams
	store    *diskStore     // nil when DataDir unset or unusable
	pipe     *stageCache    // nil when the pipeline cache is disabled
	wire     *wireMemo      // raw upload bytes -> canonical log digest
	sem      chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	jobOrder []string        // insertion order, for bounded retention
	inflight map[string]*Job // request key -> running/queued job
	queued   int             // jobs waiting for a concurrency slot
	nextID   int64

	started      atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	cancelled    atomic.Int64
	coalesced    atomic.Int64
	pipelineRuns atomic.Int64
	active       sync.WaitGroup

	// draining marks the service as leaving rotation: /readyz reports 503 so
	// routers and load balancers stop sending new work, while liveness and
	// in-flight jobs are unaffected. Set by StartDrain (and by Close).
	draining atomic.Bool
}

// New builds a service; the caller must Close it.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	//lint:gecco-allow(ctxflow): service-lifetime root by design: jobs outlive the submitting request and are cancelled via Close or DELETE /jobs/{id}
	ctx, cancel := context.WithCancel(context.Background())
	var store *diskStore
	if opts.DataDir != "" {
		var err error
		if store, err = openDiskStore(opts.DataDir); err != nil {
			// New has no error return by contract; a server that cannot
			// persist still serves, just cold after restarts.
			fmt.Fprintf(os.Stderr, "service: persistence disabled: %v\n", err)
			store = nil
		}
	}
	var sessions *sessionCache
	if opts.SessionCapacity > 0 {
		sessions = newSessionCache(opts.SessionCapacity, store)
	}
	var streams *streamManager
	if opts.MaxStreams > 0 {
		streams = newStreamManager(opts.MaxStreams)
	}
	cache := NewCache(opts.CacheCapacity)
	if store != nil && opts.CacheCapacity > 0 {
		store.loadResults(cache)
	}
	var pipe *stageCache
	if opts.PipelineCacheCapacity > 0 {
		pipe = newStageCache(opts.PipelineCacheCapacity)
	}
	return &Service{
		opts:       opts,
		cache:      cache,
		sessions:   sessions,
		streams:    streams,
		store:      store,
		pipe:       pipe,
		wire:       newWireMemo(),
		sem:        make(chan struct{}, opts.MaxConcurrent),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
	}
}

// Close cancels every queued and running job and waits for them to stop.
// Requests arriving at or after Close are rejected with ErrClosed, so no
// job can start once the wait begins. With a warm tier configured, every
// live session's index is spilled after the jobs drain, so a restarted
// process warm-opens its whole working set.
func (s *Service) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.streams != nil {
		// Drain the streaming workload: retire every live stream and
		// reject new /stream requests; in-flight regroups are cancelled by
		// the base context below.
		s.streams.closeAll()
	}
	s.baseCancel()
	s.active.Wait()
	if s.sessions != nil {
		s.sessions.spillAll()
	}
	if s.store != nil {
		s.store.close()
	}
}

// StartDrain takes the service out of rotation without stopping it:
// readiness (/readyz) flips to 503 so routers remove the shard, while
// liveness stays green and queued and running jobs finish normally. The
// intended departure sequence is StartDrain → stop accepting connections →
// Close (which cancels stragglers and spills every live session to the warm
// tier, so ring successors warm-open the .gidx files instead of re-parsing).
func (s *Service) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain (or Close) has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Meta describes how a synchronous request was served.
type Meta struct {
	JobID  string `json:"jobId,omitempty"`
	Cached bool   `json:"cached"`
	// CoalescedInto is set when the request joined an identical in-flight
	// job instead of starting its own run.
	CoalescedInto bool `json:"coalesced,omitempty"`
}

// Do serves a request synchronously: from the cache when possible,
// otherwise by joining an identical in-flight run or starting a new job.
// Cancelling ctx abandons the wait; when this caller was the job's last
// waiter (and no detached submission holds it), the pipeline itself is
// cancelled mid-frontier.
func (s *Service) Do(ctx context.Context, req Request) (*JobResult, Meta, error) {
	if err := validate(req); err != nil {
		return nil, Meta{}, err
	}
	key := ""
	if Cacheable(req.Config) {
		key = requestKey(req.logDigest(), req.Constraints, req.Config)
		if res, ok := s.cache.Get(key); ok {
			return res, Meta{Cached: true}, nil
		}
	}
	job, joined, cached, err := s.startOrJoin(key, &req, false)
	if err != nil {
		return nil, Meta{}, err
	}
	if cached != nil {
		return cached, Meta{Cached: true}, nil
	}
	meta := Meta{JobID: job.id, CoalescedInto: joined}
	res, err := s.wait(ctx, job)
	return res, meta, err
}

// Submit starts (or joins) a job asynchronously and returns its snapshot
// immediately. Detached jobs run to completion unless cancelled explicitly
// or by service shutdown.
func (s *Service) Submit(req Request) (JobSnapshot, error) {
	if err := validate(req); err != nil {
		return JobSnapshot{}, err
	}
	key := ""
	if Cacheable(req.Config) {
		key = requestKey(req.logDigest(), req.Constraints, req.Config)
		if res, ok := s.cache.Get(key); ok {
			// Synthesise an already-done job so the client's poll loop is
			// uniform; it is retained like any other finished job.
			return s.adoptCached(key, req.Tag, res), nil
		}
	}
	job, _, cached, err := s.startOrJoin(key, &req, true)
	if err != nil {
		return JobSnapshot{}, err
	}
	if cached != nil {
		return s.adoptCached(key, req.Tag, cached), nil
	}
	return s.Job(job.id)
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (JobSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobSnapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return job.snapshotLocked(), nil
}

// Cancel cancels a queued or running job by ID. Cancellation is
// asynchronous — the pipeline observes it at its next sampling point — so
// the returned snapshot may still show the job running; poll Job until it
// reaches StateCancelled. The job is unregistered from the in-flight table
// immediately, so new identical requests start a fresh run instead of
// joining the doomed one.
func (s *Service) Cancel(id string) (JobSnapshot, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobSnapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.dropInflightLocked(job)
	cancel := job.cancel
	s.mu.Unlock()
	cancel()
	return s.Job(id)
}

// dropInflightLocked unregisters the job from the coalescing table if it is
// still the registered run for its key. The guard matters: a fresh job may
// already have re-registered under the same key. Requires s.mu.
func (s *Service) dropInflightLocked(job *Job) {
	if job.key != "" && s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
}

// Busy reports whether the waiting queue is full, for cheap fast-path
// rejection before a caller pays to read and parse a request body. A busy
// service may still serve cache hits and coalescing joins, so this is a
// load-shedding heuristic, not a guarantee of rejection.
func (s *Service) Busy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued >= s.opts.MaxQueued
}

// Stats snapshots cache and job counters.
func (s *Service) Stats() Stats {
	st := Stats{Cache: s.cache.Stats()}
	if s.sessions != nil {
		st.Sessions = s.sessions.Stats()
	}
	if s.streams != nil {
		st.Streams = s.streams.Stats()
	}
	st.Jobs = JobStats{
		Started:   s.started.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Cancelled: s.cancelled.Load(),
		Coalesced: s.coalesced.Load(),
	}
	if s.pipe != nil {
		st.Pipeline = s.pipe.Stats()
	}
	st.Pipeline.Runs = s.pipelineRuns.Load()
	if s.store != nil {
		st.Disk = s.store.stats()
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.state {
		case StateRunning:
			st.Jobs.Running++
		case StateQueued:
			st.Jobs.Queued++
		}
	}
	s.mu.Unlock()
	return st
}

func validate(req Request) error {
	// A digest-bearing lazy request is valid without a parsed Log: the
	// wire-digest memo only learns uploads that passed this check parsed,
	// so the lazy path cannot smuggle in an empty log.
	lazy := req.Log == nil && req.digest != "" && req.loadLog != nil
	if !lazy && (req.Log == nil || len(req.Log.Traces) == 0) {
		return fmt.Errorf("%w: empty log", ErrInvalidRequest)
	}
	if req.Constraints == nil {
		return fmt.Errorf("%w: nil constraint set", ErrInvalidRequest)
	}
	return nil
}

// startOrJoin finds an identical in-flight job to share or starts a new
// one. detached marks asynchronous submissions, which are never cancelled
// by waiter departure. Returns ErrBusy when the waiting queue is full —
// coalescing joins are exempt, as they add no queued work. A non-nil
// cached return means an identical job finished between the caller's
// lock-free cache check and this locked one; no job was started.
func (s *Service) startOrJoin(key string, req *Request, detached bool) (job *Job, joined bool, cached *JobResult, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, nil, ErrClosed
	}
	if key != "" {
		if j, ok := s.inflight[key]; ok {
			s.coalesced.Add(1)
			if detached {
				j.detached = true
			} else {
				j.waiters++
			}
			return j, true, nil, nil
		}
		// finish() publishes to the cache and drops the inflight entry
		// under this same lock, so recheck before paying for a fresh run.
		// Quiet: this request's miss was already counted lock-free.
		if res, ok := s.cache.getQuiet(key); ok {
			return nil, false, res, nil
		}
	}
	if s.queued >= s.opts.MaxQueued {
		return nil, false, nil, fmt.Errorf("%w: %d jobs waiting (max %d)", ErrBusy, s.queued, s.opts.MaxQueued)
	}
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	job = &Job{
		id:       fmt.Sprintf("%sjob-%d", s.opts.JobIDPrefix, s.nextID),
		key:      key,
		tag:      req.Tag,
		state:    StateQueued,
		created:  time.Now(),
		detached: detached,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	if !detached {
		job.waiters = 1
	}
	s.retainLocked(job)
	if key != "" {
		s.inflight[key] = job
	}
	s.queued++
	s.started.Add(1)
	s.active.Add(1)
	go s.run(ctx, job, *req)
	return job, false, nil, nil
}

// run executes one job: acquire a concurrency slot, run the pipeline under
// the job context, publish the outcome.
func (s *Service) run(ctx context.Context, job *Job, req Request) {
	defer s.active.Done()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finish(job, nil, fmt.Errorf("service: %w", ctx.Err()))
		return
	}
	defer func() { <-s.sem }()

	s.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	s.queued--
	s.mu.Unlock()

	cfg := req.Config
	if cfg.Workers == 0 && s.opts.DefaultWorkers > 0 {
		cfg.Workers = s.opts.DefaultWorkers
	}
	res, err := s.solve(ctx, req, cfg)
	s.finish(job, res, err)
}

// solve runs the pipeline, reusing (or admitting) a live session for the
// log when the session cache is enabled. Session reuse never changes the
// result — only the constraint-independent work a job pays for — so it is
// safe for cacheable and non-cacheable requests alike.
func (s *Service) solve(ctx context.Context, req Request, cfg core.Config) (*JobResult, error) {
	if s.sessions == nil {
		log, err := req.log()
		if err != nil {
			return nil, err
		}
		return core.RunContext(ctx, log, req.Constraints, cfg)
	}
	sess, err := s.sessions.getOrCreate(req.logDigest(), req.log)
	if err != nil {
		return nil, err
	}
	res, solveErr := sess.Solve(ctx, req.Constraints, cfg)
	// Memo-growth bound: retire the session once its distance memo exceeds
	// the limit, so a hot log on a long-running server cannot accumulate
	// memory without end. The current result is unaffected; the next
	// request on this log rebuilds a fresh session.
	if sess.MemoSize() > s.opts.SessionMemoLimit {
		s.sessions.drop(req.logDigest(), sess)
	}
	return res, solveErr
}

// finish publishes a job outcome, fills the cache, and wakes waiters.
func (s *Service) finish(job *Job, res *JobResult, err error) {
	s.mu.Lock()
	if job.state == StateQueued {
		s.queued-- // cancelled before a slot freed up
	}
	job.ended = time.Now()
	job.result = res
	job.err = err
	switch {
	case err == nil:
		job.state = StateDone
		s.completed.Add(1)
		if job.key != "" {
			s.cache.Put(job.key, res)
			if s.store != nil {
				// Write-through to the warm tier (feasible results only;
				// saveResultAsync screens). Async: disk IO has no business
				// under s.mu or on the job's critical path.
				s.store.saveResultAsync(job.key, res)
			}
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.state = StateCancelled
		s.cancelled.Add(1)
	default:
		job.state = StateFailed
		s.failed.Add(1)
	}
	s.dropInflightLocked(job)
	s.evictResultsLocked()
	s.mu.Unlock()
	job.cancel() // release the context's resources
	close(job.done)
}

// evictResultsLocked drops the full results of all but the newest
// MaxRetainedResults finished jobs, bounding the memory pinned by retained
// abstracted logs. Jobs with waiters still between the done signal and
// their locked result read are spared — they release their ref in wait().
// Requires s.mu.
func (s *Service) evictResultsLocked() {
	withResult := 0
	for i := len(s.jobOrder) - 1; i >= 0; i-- {
		job, ok := s.jobs[s.jobOrder[i]]
		if !ok || job.result == nil || job.waiters > 0 || job.cacheBacked {
			continue
		}
		withResult++
		if withResult > s.opts.MaxRetainedResults {
			job.result = nil
			job.resultEvicted = true
		}
	}
}

// wait blocks until the job finishes or ctx is cancelled; a departing last
// waiter cancels the job itself.
func (s *Service) wait(ctx context.Context, job *Job) (*JobResult, error) {
	select {
	case <-job.done:
		// Copy the result and release the waiter ref under one lock:
		// evictResultsLocked spares jobs with live waiters, so the result
		// cannot be nilled between the job finishing and this read.
		s.mu.Lock()
		res, err := job.result, job.err
		job.waiters--
		s.mu.Unlock()
		return res, err
	case <-ctx.Done():
		s.mu.Lock()
		job.waiters--
		abandon := job.waiters <= 0 && !job.detached
		if abandon {
			// Unregister before cancelling: the pipeline takes up to a
			// sampling interval to observe the cancellation, and a new
			// identical request arriving in that window must start a fresh
			// run, not join the doomed one.
			s.dropInflightLocked(job)
		}
		s.mu.Unlock()
		if abandon {
			job.cancel()
		}
		return nil, fmt.Errorf("service: request abandoned: %w", ctx.Err())
	}
}

// adoptCached registers a pre-completed job backed by a cache hit.
func (s *Service) adoptCached(key, tag string, res *JobResult) JobSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	now := time.Now()
	job := &Job{
		id:          fmt.Sprintf("%sjob-%d", s.opts.JobIDPrefix, s.nextID),
		key:         key,
		tag:         tag,
		state:       StateDone,
		result:      res,
		cacheBacked: true,
		created:     now,
		started:     now,
		ended:       now,
		cancel:      func() {},
		done:        make(chan struct{}),
	}
	close(job.done)
	s.retainLocked(job)
	s.evictResultsLocked()
	return job.snapshotLocked()
}

// retainLocked records the job and drops the oldest finished jobs beyond
// the retention bound. Requires s.mu.
func (s *Service) retainLocked(job *Job) {
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	for len(s.jobs) > s.opts.MaxRetainedJobs {
		dropped := false
		for i, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				dropped = true
				break
			}
			if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			break // everything live; let the map grow past the bound
		}
	}
}

func (j *Job) snapshotLocked() JobSnapshot {
	return JobSnapshot{
		ID:            j.id,
		Tag:           j.tag,
		State:         j.state,
		Result:        j.result,
		ResultEvicted: j.resultEvicted,
		Err:           j.err,
		Created:       j.created,
		Started:       j.started,
		Ended:         j.ended,
		Coalesce:      j.waiters,
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func postPipeline(t *testing.T, srv *httptest.Server, contentType, body string, params url.Values) (*http.Response, PipelineResponse) {
	t.Helper()
	u := srv.URL + "/pipeline"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := http.Post(u, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out PipelineResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// goldenJSON re-marshals a pipeline response with the wall-clock ms fields
// zeroed, leaving only deterministic content.
func goldenJSON(t *testing.T, out PipelineResponse) []byte {
	t.Helper()
	for i := range out.Stages {
		out.Stages[i].Ms = 0
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Golden end to end: the default suggest→abstract→discover→conform pipeline
// on the running example under the paper's role-homogeneity constraint
// produces the same JSON (modulo timings) on two independent service
// instances, and each section is populated.
func TestHTTPPipelineGoldenEndToEnd(t *testing.T) {
	logXES := runningExampleXES(t)
	params := url.Values{
		"constraints":       {"distinct(role) <= 1"},
		"includeAbstracted": {"true"},
	}

	run := func() PipelineResponse {
		srv, _ := newTestServer(t, Options{})
		resp, out := postPipeline(t, srv, "application/xml", logXES, params)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %+v", resp.StatusCode, out)
		}
		return out
	}
	out := run()

	if len(out.Stages) != 4 {
		t.Fatalf("ran %d stages, want the 4 defaults: %+v", len(out.Stages), out.Stages)
	}
	wantOrder := []string{"suggest", "abstract", "discover", "conform"}
	for i, st := range out.Stages {
		if st.Stage != wantOrder[i] {
			t.Fatalf("stage %d = %s, want %s", i, st.Stage, wantOrder[i])
		}
		if st.Key == "" {
			t.Fatalf("stage %s has no chain key", st.Stage)
		}
		if st.Cached {
			t.Fatalf("stage %s cached on a fresh service", st.Stage)
		}
	}
	if len(out.Constraints) != 1 {
		t.Fatalf("constraints not echoed: %v", out.Constraints)
	}
	if out.Abstraction == nil || !out.Abstraction.Feasible {
		t.Fatalf("abstraction missing or infeasible: %+v", out.Abstraction)
	}
	if got := len(out.Abstraction.GroupClasses); got != 4 {
		t.Fatalf("got %d groups, want 4 (Figure 7): %v", got, out.Abstraction.GroupClasses)
	}
	if out.Abstracted == "" {
		t.Fatal("includeAbstracted=true returned no abstracted log")
	}
	if out.Model == nil || len(out.Model.Activities) != 4 || out.Model.Edges == 0 {
		t.Fatalf("model missing or empty: %+v", out.Model)
	}
	if out.Conformance == nil {
		t.Fatal("conform stage produced no result")
	}
	if f := out.Conformance.Fitness; f <= 0 || f > 1 {
		t.Fatalf("fitness %f out of (0,1]", f)
	}
	if p := out.Conformance.Precision; p <= 0 || p > 1 {
		t.Fatalf("precision %f out of (0,1]", p)
	}

	// A second, independent instance must produce byte-identical JSON once
	// the per-stage wall-clock fields are zeroed.
	if a, b := goldenJSON(t, out), goldenJSON(t, run()); !bytes.Equal(a, b) {
		t.Fatalf("pipeline output not deterministic across instances:\n%s\n%s", a, b)
	}
}

// Re-submitting a pipeline with only the tail (conform) stage changed must
// adopt every upstream state from the per-stage cache — counter-asserted
// through /stats — so the expensive abstract stage never re-runs.
func TestHTTPPipelineTailChangeHitsCache(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	logXES := runningExampleXES(t)

	stages := func(details bool) string {
		specs := []map[string]any{
			{"stage": "suggest"},
			{"stage": "abstract"},
			{"stage": "discover"},
		}
		conform := map[string]any{"stage": "conform"}
		if details {
			conform["details"] = true
		}
		b, err := json.Marshal(append(specs, conform))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	resp, out := postPipeline(t, srv, "application/xml", logXES,
		url.Values{"stages": {stages(false)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	for _, st := range out.Stages {
		if st.Cached {
			t.Fatalf("stage %s cached on the first run", st.Stage)
		}
	}

	resp, out2 := postPipeline(t, srv, "application/xml", logXES,
		url.Values{"stages": {stages(true)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out2)
	}
	for i, st := range out2.Stages[:3] {
		if !st.Cached {
			t.Fatalf("upstream stage %s re-executed after a tail-only change", st.Stage)
		}
		if st.Key != out.Stages[i].Key {
			t.Fatalf("stage %s chain key changed by a tail edit", st.Stage)
		}
	}
	if out2.Stages[3].Cached {
		t.Fatal("edited conform stage served from cache")
	}
	if out2.Stages[3].Key == out.Stages[3].Key {
		t.Fatal("conform chain key ignored its config change")
	}
	if len(out2.Conformance.Misfits) == 0 && out2.Conformance.Fitness < 1 {
		t.Fatal("details=true with imperfect fitness reported no misfits")
	}

	var st Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Pipeline.Runs != 2 {
		t.Fatalf("pipeline runs = %d, want 2", st.Pipeline.Runs)
	}
	for _, name := range []string{"suggest", "abstract", "discover"} {
		ctr := st.Pipeline.Stages[name]
		if ctr.Hits != 1 || ctr.Misses != 1 {
			t.Fatalf("%s counters hits=%d misses=%d, want 1/1 (second run adopted from cache)",
				name, ctr.Hits, ctr.Misses)
		}
	}
	if ctr := st.Pipeline.Stages["conform"]; ctr.Hits != 0 || ctr.Misses != 2 {
		t.Fatalf("conform counters hits=%d misses=%d, want 0/2 (both configs executed)",
			ctr.Hits, ctr.Misses)
	}
	if st.Pipeline.Entries == 0 || st.Pipeline.Capacity == 0 {
		t.Fatalf("state LRU occupancy not reported: %+v", st.Pipeline)
	}
}

// The JSON envelope path: a CSV log with explicit constraints skips the
// suggest stage's derivation and solves under the supplied set.
func TestHTTPPipelineJSONEnvelope(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	csv := "case,activity,role\n" +
		"1,a,clerk\n1,b,clerk\n1,c,boss\n" +
		"2,a,clerk\n2,c,boss\n"
	env := PipelineHTTPRequest{
		Format:      "csv",
		Log:         csv,
		Constraints: "distinct(role) <= 1",
	}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postPipeline(t, srv, "application/json", string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if len(out.Constraints) != 1 || !strings.Contains(out.Constraints[0], "distinct(role)") {
		t.Fatalf("user constraints not echoed: %v", out.Constraints)
	}
	if len(out.Suggestions) != 0 {
		t.Fatal("suggest stage derived constraints despite a user-supplied set")
	}
	if out.Abstraction == nil || !out.Abstraction.Feasible {
		t.Fatalf("role homogeneity infeasible: %+v", out.Abstraction)
	}
	if out.Model == nil || out.Conformance == nil {
		t.Fatal("downstream stages missing from envelope run")
	}
}

// Invalid pipelines are rejected as 400s before burning a concurrency slot.
func TestHTTPPipelineInvalidRequests(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	logXES := runningExampleXES(t)

	for name, tc := range map[string]struct {
		body   string
		params url.Values
	}{
		"bad stage list":      {logXES, url.Values{"stages": {`[{"stage":"bogus"}]`}}},
		"unknown field":       {logXES, url.Values{"stages": {`[{"stage":"abstract","nope":1}]`}}},
		"conform needs model": {logXES, url.Values{"stages": {`[{"stage":"conform"}]`}}},
		"unparsable log":      {"not xml <", nil},
		"empty body":          {"", nil},
	} {
		resp, err := http.Post(srv.URL+"/pipeline?"+tc.params.Encode(), "application/xml",
			strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

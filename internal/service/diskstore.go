// The warm tier: a diskStore persists columnar indexes and cacheable
// results under the service's data directory, so session-cache evictions
// and process restarts cost an OpenIndex (pure IO) instead of a re-parse
// and re-build. Layout under the data dir:
//
//	index/<log-digest>.gidx    one eventlog index file per log (WriteIndex)
//	results/<request-key>.json one envelope per cacheable feasible result
//
// Both digests are hex SHA-256, so names are filename-safe and collision-
// free. All writes are atomic (temp file + rename), which is what makes
// concurrent open-while-evicting safe: a reader sees the old complete file
// or the new one, never a torn write. Corrupt or truncated files are
// detected by the index format's checksums (or the JSON decoder), counted,
// deleted, and rebuilt from the source log on the next request — the warm
// tier is a cache, never the source of truth.

package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/xes"
)

// DiskStats reports the warm tier's state and traffic for /stats.
type DiskStats struct {
	Dir         string `json:"dir"`
	IndexFiles  int    `json:"indexFiles"`
	IndexBytes  int64  `json:"indexBytes"`
	ResultFiles int    `json:"resultFiles"`
	// SpillWrites counts index files written on eviction/retirement/shutdown;
	// WarmOpens counts sessions rebuilt from disk instead of re-parsed.
	SpillWrites    int64 `json:"spillWrites"`
	SpillErrors    int64 `json:"spillErrors"`
	WarmOpens      int64 `json:"warmOpens"`
	WarmOpenErrors int64 `json:"warmOpenErrors"`
	ResultsSaved   int64 `json:"resultsSaved"`
	ResultsLoaded  int64 `json:"resultsLoaded"`
}

// diskStore is the on-disk warm tier under the in-RAM session and result
// caches. All methods are safe for concurrent use; writers never block
// readers (atomic rename), and async spills are tracked so close can wait
// for them.
type diskStore struct {
	dir string

	spillWrites    atomic.Int64
	spillErrors    atomic.Int64
	warmOpens      atomic.Int64
	warmOpenErrors atomic.Int64
	resultsSaved   atomic.Int64
	resultsLoaded  atomic.Int64

	writes sync.WaitGroup
}

func openDiskStore(dir string) (*diskStore, error) {
	for _, sub := range []string{"index", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &diskStore{dir: dir}, nil
}

// close waits for in-flight async writes. The store holds no descriptors
// between operations, so there is nothing else to release.
func (d *diskStore) close() { d.writes.Wait() }

func (d *diskStore) indexPath(digest string) string {
	return filepath.Join(d.dir, "index", digest+".gidx")
}

func (d *diskStore) resultPath(key string) string {
	return filepath.Join(d.dir, "results", key+".json")
}

// spillIndex writes the index to the warm tier unless a file for the digest
// already exists (an index is a pure function of its log, so rewriting is
// wasted IO — and sessions warm-opened from this very file always hit this
// path).
func (d *diskStore) spillIndex(digest string, x *eventlog.Index) {
	path := d.indexPath(digest)
	if _, err := os.Stat(path); err == nil {
		return
	}
	if err := eventlog.WriteIndexFile(path, x); err != nil {
		d.spillErrors.Add(1)
		return
	}
	d.spillWrites.Add(1)
}

// spillIndexAsync runs spillIndex off the caller's goroutine (eviction
// happens under the session cache mutex on the request path); close waits
// for it.
func (d *diskStore) spillIndexAsync(digest string, x *eventlog.Index) {
	d.writes.Add(1)
	go func() {
		defer d.writes.Done()
		d.spillIndex(digest, x)
	}()
}

// openIndex opens the digest's spilled index, if one exists and decodes
// cleanly. A corrupt file is counted, removed, and reported as a miss, so
// the caller falls back to rebuilding from the log (which re-spills later).
func (d *diskStore) openIndex(digest string) (*eventlog.Index, bool) {
	path := d.indexPath(digest)
	x, err := eventlog.OpenIndex(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			d.warmOpenErrors.Add(1)
			os.Remove(path)
		}
		return nil, false
	}
	d.warmOpens.Add(1)
	return x, true
}

// storedResult is the persisted form of a feasible cacheable result. The
// abstracted log rides along as canonical XES (the repo's pinned round-trip
// format); Grouping.Groups bitsets are deliberately not persisted — they
// index the source log's class universe, which a restarted process has not
// rebuilt, and nothing downstream of the cache reads them. Infeasible
// results are never persisted: their contract returns the original log and
// live *constraints.Violations diagnostics, neither of which belongs in a
// cache file.
type storedResult struct {
	Version            int        `json:"version"`
	Names              []string   `json:"names,omitempty"`
	GroupClasses       [][]string `json:"groupClasses,omitempty"`
	Distance           float64    `json:"distance"`
	AbstractedXES      string     `json:"abstractedXes,omitempty"`
	NumCandidates      int        `json:"numCandidates"`
	CandidatesTimedOut bool       `json:"candidatesTimedOut,omitempty"`
	ConstraintChecks   int        `json:"constraintChecks"`
	SolverNodes        int        `json:"solverNodes"`
	TimingsNs          [3]int64   `json:"timingsNs"`
}

const storedResultVersion = 1

// persistable reports whether a result can round-trip through the disk
// tier.
func persistable(res *JobResult) bool { return res != nil && res.Feasible }

// saveResult persists a feasible result envelope atomically.
func (d *diskStore) saveResult(key string, res *JobResult) {
	if !persistable(res) {
		return
	}
	env := storedResult{
		Version:            storedResultVersion,
		Names:              res.Grouping.Names,
		GroupClasses:       res.GroupClasses,
		Distance:           res.Distance,
		NumCandidates:      res.NumCandidates,
		CandidatesTimedOut: res.CandidatesTimedOut,
		ConstraintChecks:   res.ConstraintChecks,
		SolverNodes:        res.SolverNodes,
		TimingsNs: [3]int64{
			int64(res.Timings.Candidates),
			int64(res.Timings.Solve),
			int64(res.Timings.Abstract),
		},
	}
	if res.Abstracted != nil {
		var b strings.Builder
		if err := xes.Write(&b, res.Abstracted); err != nil {
			d.spillErrors.Add(1)
			return
		}
		env.AbstractedXES = b.String()
	}
	data, err := json.Marshal(env)
	if err != nil {
		d.spillErrors.Add(1)
		return
	}
	if err := atomicWriteFile(d.resultPath(key), data); err != nil {
		d.spillErrors.Add(1)
		return
	}
	d.resultsSaved.Add(1)
}

// saveResultAsync persists off the job-finishing path; close waits for it.
func (d *diskStore) saveResultAsync(key string, res *JobResult) {
	if !persistable(res) {
		return
	}
	d.writes.Add(1)
	go func() {
		defer d.writes.Done()
		d.saveResult(key, res)
	}()
}

// loadResult decodes one persisted result envelope.
func loadResult(data []byte) (*JobResult, error) {
	var env storedResult
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.Version != storedResultVersion {
		return nil, errors.New("service: unknown stored-result version")
	}
	res := &JobResult{
		Feasible:           true,
		GroupClasses:       env.GroupClasses,
		Distance:           env.Distance,
		NumCandidates:      env.NumCandidates,
		CandidatesTimedOut: env.CandidatesTimedOut,
		ConstraintChecks:   env.ConstraintChecks,
		SolverNodes:        env.SolverNodes,
		Timings: core.Timings{
			Candidates: time.Duration(env.TimingsNs[0]),
			Solve:      time.Duration(env.TimingsNs[1]),
			Abstract:   time.Duration(env.TimingsNs[2]),
		},
	}
	res.Grouping.Names = env.Names
	if env.AbstractedXES != "" {
		log, err := xes.Read(strings.NewReader(env.AbstractedXES))
		if err != nil {
			return nil, err
		}
		res.Abstracted = log
	}
	return res, nil
}

// loadResults scans the results directory into the cache at startup. Files
// that fail to decode are removed (the tier is a cache; a bad file costs a
// recompute, not an error). File order is sorted so which entries survive a
// smaller-than-disk cache capacity is deterministic.
func (d *diskStore) loadResults(cache *Cache) {
	entries, err := os.ReadDir(filepath.Join(d.dir, "results"))
	if err != nil {
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(d.dir, "results", name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		res, err := loadResult(data)
		if err != nil {
			os.Remove(path)
			continue
		}
		cache.Put(strings.TrimSuffix(name, ".json"), res)
		d.resultsLoaded.Add(1)
	}
}

// stats walks the tier for /stats. File counts and sizes are read fresh on
// every call — /stats is polled, not hot.
func (d *diskStore) stats() *DiskStats {
	st := &DiskStats{
		Dir:            d.dir,
		SpillWrites:    d.spillWrites.Load(),
		SpillErrors:    d.spillErrors.Load(),
		WarmOpens:      d.warmOpens.Load(),
		WarmOpenErrors: d.warmOpenErrors.Load(),
		ResultsSaved:   d.resultsSaved.Load(),
		ResultsLoaded:  d.resultsLoaded.Load(),
	}
	if entries, err := os.ReadDir(filepath.Join(d.dir, "index")); err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".gidx") {
				continue
			}
			st.IndexFiles++
			if fi, err := e.Info(); err == nil {
				st.IndexBytes += fi.Size()
			}
		}
	}
	if entries, err := os.ReadDir(filepath.Join(d.dir, "results")); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				st.ResultFiles++
			}
		}
	}
	return st
}

func atomicWriteFile(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

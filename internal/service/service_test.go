package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func roleRequest(t *testing.T) Request {
	t.Helper()
	set, err := constraints.ParseSet("distinct(role) <= 1")
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Log:         procgen.RunningExampleTable1(),
		Constraints: set,
		Config:      core.Config{Mode: core.DFGUnbounded},
	}
}

// slowRequest is a problem large enough to keep a worker busy for the whole
// test unless cancelled: unbudgeted exhaustive enumeration on the loan log.
func slowRequest(t *testing.T) Request {
	t.Helper()
	set, err := constraints.ParseSet("distinct(role) <= 1")
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Log:         procgen.LoanLog(400, 17),
		Constraints: set,
		Config:      core.Config{Mode: core.Exhaustive},
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	req := roleRequest(t)

	res1, meta1, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Cached {
		t.Fatal("first request reported cached")
	}
	if !res1.Feasible {
		t.Fatal("running example with role constraint should be feasible")
	}

	res2, meta2, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if res2.Distance != res1.Distance {
		t.Fatalf("cached distance %v != fresh distance %v", res2.Distance, res1.Distance)
	}

	st := svc.Stats()
	if st.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Cache.Hits)
	}
	if st.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", st.Cache.Misses)
	}
	if st.Cache.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Cache.Entries)
	}
	if st.Jobs.Started != 1 {
		t.Fatalf("jobs started = %d, want 1 (cache hit must not start a job)", st.Jobs.Started)
	}
}

// Reordered constraint declarations and differing worker counts are the
// same request: the canonical key must coincide.
func TestRequestKeyCanonicalisation(t *testing.T) {
	setA, _ := constraints.ParseSet("distinct(role) <= 1\n|g| <= 8")
	setB, _ := constraints.ParseSet("|g| <= 8\ndistinct(role) <= 1")
	log := procgen.RunningExampleTable1()
	d := LogDigest(log)
	kA := requestKey(d, setA, core.Config{Mode: core.DFGUnbounded, Workers: 1})
	kB := requestKey(d, setB, core.Config{Mode: core.DFGUnbounded, Workers: 8})
	if kA != kB {
		t.Fatal("reordered constraints / different worker counts split the cache key")
	}
	kC := requestKey(d, setA, core.Config{Mode: core.Exhaustive})
	if kA == kC {
		t.Fatal("different modes share a cache key")
	}
}

func TestLogDigestSensitivity(t *testing.T) {
	a := procgen.RunningExampleTable1()
	b := procgen.RunningExampleTable1()
	if LogDigest(a) != LogDigest(b) {
		t.Fatal("identical logs produced different digests")
	}
	// The log name is wire-format-dependent (XES carries concept:name,
	// CSV cannot) and must not split the cache key.
	b.Name = "renamed"
	if LogDigest(a) != LogDigest(b) {
		t.Fatal("log name changed the digest; XES and CSV uploads of the same events must collide")
	}
	b.Traces[0].Events[0].Class = "mutated"
	if LogDigest(a) == LogDigest(b) {
		t.Fatal("mutated log kept the same digest")
	}
}

// Timestamps differing only in fractional seconds change gap/span
// constraint outcomes, so they must change the digest too (AsString
// renders RFC3339 without sub-second precision).
func TestLogDigestSubSecondTimestamps(t *testing.T) {
	base := time.Date(2024, 1, 1, 10, 0, 0, 0, time.UTC)
	mk := func(nanos int) *eventlog.Log {
		return &eventlog.Log{Traces: []eventlog.Trace{{
			ID: "t1",
			Events: []eventlog.Event{
				{Class: "a", Attrs: map[string]eventlog.Value{
					eventlog.AttrTimestamp: eventlog.Time(base.Add(time.Duration(nanos))),
				}},
			},
		}}}
	}
	if LogDigest(mk(0)) == LogDigest(mk(int(900*time.Millisecond))) {
		t.Fatal("logs differing only in sub-second timestamps collided on one digest")
	}
}

// Finished jobs beyond MaxRetainedResults drop their full result (the
// abstracted log) while keeping metadata, bounding retained memory.
func TestRetainedResultsEvicted(t *testing.T) {
	svc := New(Options{MaxRetainedResults: 1})
	defer svc.Close()

	first, err := svc.Submit(roleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, first.ID)
	// A different (non-coalescing) request pushes the first job past the
	// retained-results bound.
	req2 := roleRequest(t)
	req2.Config.Mode = core.Exhaustive
	second, err := svc.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, second.ID)

	got1, err := svc.Job(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Result != nil || !got1.ResultEvicted {
		t.Fatalf("oldest job kept its result: evicted=%t result=%v", got1.ResultEvicted, got1.Result != nil)
	}
	got2, err := svc.Job(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Result == nil || got2.ResultEvicted {
		t.Fatal("newest job lost its result")
	}
	// The evicted job's result is still servable through the cache.
	req1 := roleRequest(t)
	if _, meta, err := svc.Do(context.Background(), req1); err != nil || !meta.Cached {
		t.Fatalf("re-POST after eviction: err=%v cached=%t", err, meta.Cached)
	}
}

func waitDone(t *testing.T, svc *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := svc.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == StateDone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}

// Wall-clock budgets make results timing-dependent; they must bypass the
// cache rather than serve one run's lucky cut to every later caller.
func TestTimeLimitedRequestsNotCached(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	req := roleRequest(t)
	req.Config.Budget = candidates.Budget{TimeLimit: time.Minute}
	if _, meta, err := svc.Do(context.Background(), req); err != nil || meta.Cached {
		t.Fatalf("err=%v cached=%t", err, meta.Cached)
	}
	if _, meta, err := svc.Do(context.Background(), req); err != nil || meta.Cached {
		t.Fatalf("second time-limited request: err=%v cached=%t, want fresh run", err, meta.Cached)
	}
	if st := svc.Stats(); st.Cache.Entries != 0 {
		t.Fatalf("cache entries = %d, want 0", st.Cache.Entries)
	}
}

// Identical concurrent requests coalesce onto one pipeline run. The single
// concurrency slot is held by a slow blocker job, so the coalescing
// requests join the queued job deterministically.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	svc := New(Options{MaxConcurrent: 1})
	defer svc.Close()

	blocker, err := svc.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	// The blocker must hold the slot before the victim is submitted, or
	// the victim could win the race for it and complete immediately.
	deadline0 := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Running == 0 && time.Now().Before(deadline0) {
		time.Sleep(5 * time.Millisecond)
	}
	queued, err := svc.Submit(roleRequest(t))
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	var wg sync.WaitGroup
	results := make([]*JobResult, n)
	metas := make([]Meta, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], metas[i], errs[i] = svc.Do(context.Background(), roleRequest(t))
		}(i)
	}
	// Give the Do calls time to register as waiters, then free the slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Coalesced < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !metas[i].CoalescedInto {
			t.Fatalf("request %d did not coalesce", i)
		}
		if metas[i].JobID != queued.ID {
			t.Fatalf("request %d ran as job %s, want shared job %s", i, metas[i].JobID, queued.ID)
		}
		if results[i].Distance != results[0].Distance {
			t.Fatalf("coalesced results diverge: %v vs %v", results[i].Distance, results[0].Distance)
		}
	}
	st := svc.Stats()
	if st.Jobs.Started != 2 { // blocker + one shared run
		t.Fatalf("jobs started = %d, want 2", st.Jobs.Started)
	}
	if st.Jobs.Coalesced != n {
		t.Fatalf("coalesced = %d, want %d", st.Jobs.Coalesced, n)
	}
}

// A cancelled request stops its pipeline run without affecting a
// concurrently running job.
func TestCancelStopsPipelineWithoutCollateral(t *testing.T) {
	svc := New(Options{MaxConcurrent: 2})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := svc.Do(ctx, slowRequest(t))
		slowDone <- err
	}()
	// Wait until the slow job is running, then cancel its only waiter.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Running == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-slowDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request did not return")
	}

	// The unrelated job is unaffected.
	res, _, err := svc.Do(context.Background(), roleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("concurrent job infeasible after cancellation of another")
	}
	// The cancelled pipeline must actually stop (not burn CPU detached).
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := svc.Stats(); st.Jobs.Cancelled >= 1 && st.Jobs.Running == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := svc.Stats()
	t.Fatalf("pipeline still running after cancel: %+v", st.Jobs)
}

// Beyond MaxQueued waiting jobs, new non-coalescing requests are rejected
// with ErrBusy instead of pinning unbounded parsed logs in memory;
// coalescing joins stay exempt.
func TestQueueBackpressure(t *testing.T) {
	svc := New(Options{MaxConcurrent: 1, MaxQueued: 1})
	defer svc.Close()

	blocker, err := svc.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Running == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	queued, err := svc.Submit(roleRequest(t)) // fills the single queue slot
	if err != nil {
		t.Fatal(err)
	}
	overflow := roleRequest(t)
	overflow.Config.Mode = core.Exhaustive // distinct key: must not coalesce
	if _, err := svc.Submit(overflow); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submit err = %v, want ErrBusy", err)
	}
	// Coalescing onto the queued job is still allowed when the queue is full.
	if snap, err := svc.Submit(roleRequest(t)); err != nil || snap.ID != queued.ID {
		t.Fatalf("coalescing join: err=%v id=%s want %s", err, snap.ID, queued.ID)
	}
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, queued.ID)
	// With the queue drained, new requests are accepted again.
	if _, err := svc.Submit(overflow); err != nil {
		t.Fatalf("post-drain submit err = %v", err)
	}
}

// A request whose last waiter departs is unregistered from the coalescing
// table immediately, so a new identical request starts a fresh run instead
// of joining the doomed one and inheriting its cancellation.
func TestAbandonedJobLeavesInflightTable(t *testing.T) {
	svc := New(Options{MaxConcurrent: 1})
	defer svc.Close()

	// Occupy the single slot so the victim job stays queued; wait for the
	// blocker to actually hold it or the victim could win the race for it.
	blocker, err := svc.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Running == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	victimDone := make(chan error, 1)
	go func() {
		_, _, err := svc.Do(ctx, roleRequest(t))
		victimDone <- err
	}()
	deadline = time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel() // sole waiter departs; the queued job is doomed
	if err := <-victimDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request err = %v", err)
	}

	// An identical request must now start fresh, not coalesce.
	fresh := make(chan Meta, 1)
	go func() {
		_, meta, err := svc.Do(context.Background(), roleRequest(t))
		if err != nil {
			t.Error(err)
		}
		fresh <- meta
	}()
	if _, err := svc.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case meta := <-fresh:
		if meta.CoalescedInto {
			t.Fatal("new request coalesced onto an abandoned, cancelled job")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("fresh request did not complete")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2) // capacity < shard count collapses to one exact-LRU shard
	a := &JobResult{Distance: 1}
	b := &JobResult{Distance: 2}
	d := &JobResult{Distance: 3}
	c.Put("a", a)
	c.Put("b", b)
	if _, ok := c.Get("a"); !ok { // bump a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("d", d)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

// Shard capacities must sum to exactly the configured capacity, whatever
// the rounding.
func TestCacheCapacityExact(t *testing.T) {
	for _, capacity := range []int{2, 16, 20, 100, 256, 1000} {
		if got := NewCache(capacity).Stats().Capacity; got != capacity {
			t.Fatalf("NewCache(%d) capacity = %d", capacity, got)
		}
	}
}

func TestCacheSharding(t *testing.T) {
	c := NewCache(1024)
	if len(c.shards) != defaultCacheShards {
		t.Fatalf("shards = %d, want %d", len(c.shards), defaultCacheShards)
	}
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("key-%d", i), &JobResult{Distance: float64(i)})
	}
	for i := 0; i < 500; i++ {
		v, ok := c.Get(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatalf("key-%d missing (capacity 1024, stored 500)", i)
		}
		if v.Distance != float64(i) {
			t.Fatalf("key-%d holds %v", i, v.Distance)
		}
	}
}

func TestJobLookupAndNotFound(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	if _, err := svc.Job("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	snap, err := svc.Submit(roleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, err := svc.Job(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateDone {
			if got.Result == nil || !got.Result.Feasible {
				t.Fatalf("done job has result %+v", got.Result)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("async job did not finish")
}

func TestCloseCancelsRunningJobs(t *testing.T) {
	svc := New(Options{MaxConcurrent: 1})
	snap, err := svc.Submit(slowRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Running == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Close did not stop the running job")
	}
	got, err := svc.Job(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("job state after Close = %s, want cancelled", got.State)
	}
}

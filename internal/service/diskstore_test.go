package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
	"gecco/internal/xes"
)

func xesBytes(t *testing.T, log *eventlog.Log) []byte {
	t.Helper()
	if log == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := xes.Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameResult compares every field of a result the HTTP layer serialises.
func sameResult(t *testing.T, got, want *JobResult) {
	t.Helper()
	if got.Feasible != want.Feasible || got.Distance != want.Distance ||
		got.NumCandidates != want.NumCandidates || got.ConstraintChecks != want.ConstraintChecks ||
		got.SolverNodes != want.SolverNodes || got.CandidatesTimedOut != want.CandidatesTimedOut {
		t.Fatalf("result scalars diverged:\n got %+v\nwant %+v", got, want)
	}
	if len(got.GroupClasses) != len(want.GroupClasses) {
		t.Fatalf("GroupClasses: %d groups vs %d", len(got.GroupClasses), len(want.GroupClasses))
	}
	for i := range got.GroupClasses {
		if strings.Join(got.GroupClasses[i], "|") != strings.Join(want.GroupClasses[i], "|") {
			t.Fatalf("GroupClasses[%d] diverged: %v vs %v", i, got.GroupClasses[i], want.GroupClasses[i])
		}
	}
	if strings.Join(got.Grouping.Names, "|") != strings.Join(want.Grouping.Names, "|") {
		t.Fatalf("Grouping.Names diverged: %v vs %v", got.Grouping.Names, want.Grouping.Names)
	}
	if !bytes.Equal(xesBytes(t, got.Abstracted), xesBytes(t, want.Abstracted)) {
		t.Fatal("abstracted logs serialise differently")
	}
}

// TestSolveIdenticalAfterOpenIndex is the tentpole acceptance check at the
// session level: a session rebuilt from a written-and-reopened index file
// must solve to byte-identical abstraction results as the session built
// directly from the log.
func TestSolveIdenticalAfterOpenIndex(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := mustSet(t, "distinct(role) <= 1\n|g| <= 3")
	cfg := core.Config{Mode: core.DFGUnbounded}

	built, err := core.NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "log.gidx")
	if err := eventlog.WriteIndexFile(path, built.Index()); err != nil {
		t.Fatal(err)
	}
	x, err := eventlog.OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	opened, err := core.NewSessionFromIndex(x)
	if err != nil {
		t.Fatal(err)
	}

	want, err := built.Solve(context.Background(), set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opened.Solve(context.Background(), mustSet(t, "distinct(role) <= 1\n|g| <= 3"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got.Timings, want.Timings = core.Timings{}, core.Timings{}
	sameResult(t, got, want)
	if opened.MappedBytes() == 0 && built.MappedBytes() != 0 {
		t.Fatal("MappedBytes inverted: built session reports a mapping")
	}
}

// TestStoredResultRoundTrip pins the persisted-result envelope: every field
// the serving layer returns survives save → load, and infeasible results
// are refused.
func TestStoredResultRoundTrip(t *testing.T) {
	d, err := openDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(procgen.RunningExampleTable1(), mustSet(t, "distinct(role) <= 1"), core.Config{Mode: core.DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("fixture must be feasible")
	}
	res.Timings = core.Timings{Candidates: 3 * time.Millisecond, Solve: time.Second, Abstract: 7}

	d.saveResult("roundtrip", res)
	data, err := os.ReadFile(d.resultPath("roundtrip"))
	if err != nil {
		t.Fatalf("saveResult wrote nothing: %v", err)
	}
	got, err := loadResult(data)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, res)
	if got.Timings != res.Timings {
		t.Fatalf("timings diverged: %+v vs %+v", got.Timings, res.Timings)
	}

	d.saveResult("infeasible", &JobResult{Feasible: false})
	if _, err := os.Stat(d.resultPath("infeasible")); !os.IsNotExist(err) {
		t.Fatal("infeasible result must not be persisted")
	}
}

// TestPersistenceAcrossRestart is the end-to-end restart contract: a second
// service on the same data dir serves the first one's result from the
// reloaded cache, and warm-opens the spilled index for fresh constraint
// sets instead of rebuilding.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	log := procgen.RunningExampleTable1()
	cfg := core.Config{Mode: core.DFGUnbounded}

	svc1 := New(Options{DataDir: dir})
	want, meta, err := svc1.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, "distinct(role) <= 1"), Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Cached || !want.Feasible {
		t.Fatalf("first run: cached=%v feasible=%v", meta.Cached, want.Feasible)
	}
	svc1.Close() // waits for the async result save, spills the live session

	if st := svc1.Stats().Disk; st == nil || st.ResultsSaved != 1 || st.IndexFiles != 1 {
		t.Fatalf("after close: disk stats = %+v, want 1 result saved and 1 index file", st)
	}

	svc2 := New(Options{DataDir: dir})
	defer svc2.Close()
	if st := svc2.Stats().Disk; st == nil || st.ResultsLoaded != 1 {
		t.Fatalf("restart: disk stats = %+v, want 1 result loaded", st)
	}

	// Same request: served from the reloaded result cache, no pipeline run.
	got, meta, err := svc2.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, "distinct(role) <= 1"), Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Cached {
		t.Fatal("restarted service must serve the persisted result from cache")
	}
	sameResult(t, got, want)

	// Fresh constraints on the same log: result-cache miss, but the session
	// warm-opens from the spilled index instead of re-indexing the log.
	res2, _, err := svc2.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, "distinct(role) <= 1\n|g| <= 2"), Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	st := svc2.Stats()
	if st.Disk.WarmOpens != 1 {
		t.Fatalf("warm opens = %d, want 1", st.Disk.WarmOpens)
	}
	if st.Sessions.MappedBytes <= 0 {
		t.Fatalf("mapped bytes = %d, want > 0 for a warm-opened session", st.Sessions.MappedBytes)
	}
	cold, err := core.Run(log, mustSet(t, "distinct(role) <= 1\n|g| <= 2"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare copies: the async persister may still be reading res2.
	sameResult(t, &JobResult{
		Feasible: res2.Feasible, Grouping: res2.Grouping, GroupClasses: res2.GroupClasses,
		Distance: res2.Distance, Abstracted: res2.Abstracted,
		NumCandidates: res2.NumCandidates, CandidatesTimedOut: res2.CandidatesTimedOut,
		ConstraintChecks: res2.ConstraintChecks, SolverNodes: res2.SolverNodes,
	}, cold)
}

// TestEvictionSpillsIndex pins the two-tier flow within one process: with
// session capacity 1, requesting log B evicts log A's session to disk, and
// a later request on A warm-opens it.
func TestEvictionSpillsIndex(t *testing.T) {
	dir := t.TempDir()
	svc := New(Options{DataDir: dir, SessionCapacity: 1})
	defer svc.Close()
	logA := procgen.RunningExampleTable1()
	logB := procgen.RunningExample(40, 3)
	cfg := core.Config{Mode: core.DFGUnbounded}

	do := func(log *eventlog.Log, text string) {
		t.Helper()
		if _, _, err := svc.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, text), Config: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	do(logA, "distinct(role) <= 1")
	do(logB, "distinct(role) <= 1") // evicts A's session; spill is async
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Disk.SpillWrites < 1 {
		if time.Now().After(deadline) {
			t.Fatal("evicted session never spilled")
		}
		time.Sleep(time.Millisecond)
	}
	do(logA, "distinct(role) <= 1\n|g| <= 2") // evicts B, warm-opens A

	st := svc.Stats()
	if st.Disk.WarmOpens != 1 {
		t.Fatalf("warm opens = %d, want 1", st.Disk.WarmOpens)
	}
	if st.Sessions.Misses != 3 || st.Sessions.Evictions != 2 {
		t.Fatalf("session stats = %+v, want 3 misses / 2 evictions", st.Sessions)
	}
}

// TestCorruptIndexFileFallsBack drops garbage where the warm tier expects
// an index: the request must still succeed (rebuilt from the log), the
// failure must be counted, and the bad file removed.
func TestCorruptIndexFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	log := procgen.RunningExampleTable1()
	path := filepath.Join(dir, "index", LogDigest(log)+".gidx")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("GECCOIDX garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc := New(Options{DataDir: dir})
	defer svc.Close()
	res, _, err := svc.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, "distinct(role) <= 1"), Config: core.Config{Mode: core.DFGUnbounded}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("fallback build must still solve")
	}
	st := svc.Stats().Disk
	if st.WarmOpenErrors != 1 {
		t.Fatalf("warm open errors = %d, want 1", st.WarmOpenErrors)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt index file must be removed")
	}
}

// TestConcurrentOpenWhileEvicting hammers a capacity-1 two-tier cache with
// interleaved digests, so spills, warm opens, and builds race each other.
// Every caller must get a working session; run under -race via `make race`.
func TestConcurrentOpenWhileEvicting(t *testing.T) {
	store, err := openDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	logs := []*eventlog.Log{
		procgen.RunningExampleTable1(),
		procgen.RunningExample(30, 3),
		procgen.LoanLog(30, 5),
	}
	digests := make([]string, len(logs))
	for i, log := range logs {
		digests[i] = LogDigest(log)
	}

	c := newSessionCache(1, store)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := (g + i) % len(logs)
				sess, err := c.getOrCreate(digests[k], staticLog(logs[k]))
				if err != nil {
					t.Errorf("getOrCreate(%d): %v", k, err)
					return
				}
				if sess.Index().NumTraces() != len(logs[k].Traces) {
					t.Errorf("session %d: %d traces, want %d", k, sess.Index().NumTraces(), len(logs[k].Traces))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c.spillAll()
	store.close()
	if st := store.stats(); st.IndexFiles != len(logs) {
		t.Fatalf("index files after spillAll = %d, want %d", st.IndexFiles, len(logs))
	}
}

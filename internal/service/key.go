// Request hashing: cache keys are a SHA-256 digest over the canonicalised
// request — log content, constraint set, and the result-affecting Config
// fields. Two requests with byte-different but semantically identical
// inputs (reordered constraint declarations, different Workers settings)
// map to the same key, so repeated logs hit the cache regardless of how the
// client phrased the request.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
)

// LogDigest hashes a log's canonical structure: trace IDs, event classes,
// and each event's attributes in sorted order, all length-prefixed so that
// no two distinct logs share an encoding. The digest is independent of the
// wire format the log arrived in (XES and CSV uploads of the same events
// collide, as they should) — which is also why log.Name is excluded: XES
// carries a log-level concept:name while CSV cannot, and the name only
// decorates the output (a cache hit echoes the first run's name). Trace-
// and log-level attributes are excluded for the same reason: constraints
// and distance read only event data, so they cannot change the result.
//
//lint:gecco-allow(ctxflow): pure CPU hash over a body already capped at maxBodyBytes (64 MiB); finishes in tens of ms, nothing to cancel
func LogDigest(log *eventlog.Log) string {
	h := sha256.New()
	writeInt(h, len(log.Traces))
	for i := range log.Traces {
		tr := &log.Traces[i]
		writeStr(h, tr.ID)
		writeInt(h, len(tr.Events))
		for j := range tr.Events {
			e := &tr.Events[j]
			writeStr(h, e.Class)
			names := make([]string, 0, len(e.Attrs))
			for name := range e.Attrs {
				names = append(names, name)
			}
			sort.Strings(names)
			writeInt(h, len(names))
			for _, name := range names {
				v := e.Attrs[name]
				writeStr(h, name)
				writeInt(h, int(v.Kind))
				if v.Kind == eventlog.KindTime {
					// AsString renders RFC3339 without sub-second
					// precision, but gap/span constraints compare at full
					// precision — two logs differing only in fractional
					// seconds must not collide on one cache key.
					writeInt(h, int(v.Time.UnixNano()))
				} else {
					writeStr(h, v.AsString())
				}
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalConstraints renders the set as its sorted constraint strings, so
// declaration order does not split cache entries.
func canonicalConstraints(set *constraints.Set) string {
	parts := make([]string, 0, set.Len())
	for _, c := range set.All() {
		parts = append(parts, c.String())
	}
	sort.Strings(parts)
	out := ""
	for _, p := range parts {
		out += p + "\n"
	}
	return out
}

// canonicalConfig renders the result-affecting Config fields. Workers is
// deliberately omitted: any worker count produces byte-identical results.
// Budget.TimeLimit is included because a wall-clock cut makes the outcome
// depend on it (and on luck — see Cacheable).
func canonicalConfig(cfg core.Config) string {
	return fmt.Sprintf("mode=%d beam=%d strategy=%d policy=%d maxchecks=%d timelimit=%d solver=%d solvertimeout=%d skipmerge=%t prefix=%q byattr=%q groupingonly=%t",
		cfg.Mode, cfg.BeamWidth, cfg.Strategy, cfg.Policy,
		cfg.Budget.MaxChecks, cfg.Budget.TimeLimit,
		cfg.Solver, cfg.SolverTimeout, cfg.SkipExclusiveMerge,
		cfg.NamePrefix, cfg.NameByClassAttr, cfg.GroupingOnly)
}

// Cacheable reports whether a request's result is deterministic and so safe
// to cache and to coalesce with identical in-flight requests. Wall-clock
// budgets cut work at a timing-dependent point, and CustomCandidates is an
// opaque function — both bypass the cache.
func Cacheable(cfg core.Config) bool {
	return cfg.Budget.TimeLimit == 0 && cfg.SolverTimeout == 0 && cfg.CustomCandidates == nil
}

// requestKey combines the three canonical components into the cache key.
func requestKey(logDigest string, set *constraints.Set, cfg core.Config) string {
	h := sha256.New()
	writeStr(h, logDigest)
	writeStr(h, canonicalConstraints(set))
	writeStr(h, canonicalConfig(cfg))
	return hex.EncodeToString(h.Sum(nil))
}

func writeStr(h hash.Hash, s string) {
	writeInt(h, len(s))
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
}

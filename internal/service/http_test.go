package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"testing"
	"time"

	"gecco/internal/procgen"
	"gecco/internal/xes"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(opts)
	srv := httptest.NewServer(Handler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func runningExampleXES(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := xes.Write(&b, procgen.RunningExampleTable1()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func postAbstract(t *testing.T, srv *httptest.Server, body string, params url.Values) (*http.Response, AbstractResponse) {
	t.Helper()
	u := srv.URL + "/abstract"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := http.Post(u, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AbstractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// End-to-end: POST the running-example XES, assert the abstracted log
// round-trips, and assert the second identical POST is served from cache
// (observed through /stats).
func TestHTTPEndToEndWithCache(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	logXES := runningExampleXES(t)
	params := url.Values{"constraints": {"distinct(role) <= 1"}, "mode": {"dfg"}}

	resp, out := postAbstract(t, srv, logXES, params)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if out.Cached {
		t.Fatal("first request reported cached")
	}
	if !out.Feasible {
		t.Fatalf("infeasible: %s", out.Diagnostics)
	}
	// The abstracted log must round-trip through XES.
	abstracted, err := xes.Read(strings.NewReader(out.Abstracted))
	if err != nil {
		t.Fatalf("abstracted log does not parse as XES: %v", err)
	}
	if len(abstracted.Traces) != len(procgen.RunningExampleTable1().Traces) {
		t.Fatalf("abstracted log has %d traces, want %d", len(abstracted.Traces), 4)
	}
	// Figure 7 grouping: four activities, clerk classes merged.
	if len(out.GroupClasses) != 4 {
		t.Fatalf("got %d groups, want 4 (Figure 7): %v", len(out.GroupClasses), out.GroupClasses)
	}
	var flat []string
	for _, g := range out.GroupClasses {
		gg := append([]string(nil), g...)
		sort.Strings(gg)
		flat = append(flat, strings.Join(gg, ","))
	}
	sort.Strings(flat)
	want := []string{"acc", "arv,inf,prio", "ckc,ckt,rcp", "rej"}
	if strings.Join(flat, "|") != strings.Join(want, "|") {
		t.Fatalf("grouping %v, want %v", flat, want)
	}

	// Second identical request: served from the cache.
	resp2, out2 := postAbstract(t, srv, logXES, params)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if !out2.Cached {
		t.Fatal("second identical request not cached")
	}
	if out2.Abstracted != out.Abstracted {
		t.Fatal("cached abstracted log differs from fresh one")
	}

	var st Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Jobs.Started != 1 {
		t.Fatalf("jobs started = %d, want 1", st.Jobs.Started)
	}
}

// The JSON envelope is the second ingestion path; CSV logs exercise it.
func TestHTTPJSONEnvelopeCSV(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	csv := "case,activity,role\n" +
		"1,a,clerk\n1,b,clerk\n1,c,boss\n" +
		"2,a,clerk\n2,b,clerk\n2,c,boss\n"
	env := AbstractRequest{Format: "csv", Log: csv, Constraints: "distinct(role) <= 1"}
	body, _ := json.Marshal(env)
	resp, err := http.Post(srv.URL+"/abstract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AbstractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !out.Feasible {
		t.Fatalf("status %d feasible %t: %+v", resp.StatusCode, out.Feasible, out)
	}
	// a and b share a role and always co-occur; they must group.
	found := false
	for _, g := range out.GroupClasses {
		if len(g) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no merged group in %v", out.GroupClasses)
	}
	if !strings.HasPrefix(strings.TrimSpace(out.Abstracted), "case,") {
		t.Fatalf("CSV request did not get a CSV response: %.60q", out.Abstracted)
	}
}

// A cancelled client request stops the pipeline without affecting a
// concurrent job on the same server.
func TestHTTPCancelledRequestStopsPipeline(t *testing.T) {
	srv, svc := newTestServer(t, Options{MaxConcurrent: 2})

	var b strings.Builder
	if err := xes.Write(&b, procgen.LoanLog(400, 17)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	params := url.Values{"constraints": {"distinct(role) <= 1"}, "mode": {"exh"}}
	req, err := http.NewRequestWithContext(ctx, "POST",
		srv.URL+"/abstract?"+params.Encode(), strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Jobs.Running == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel() // client disconnects
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled client request returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request hung")
	}

	// Concurrent job on the same server still completes correctly.
	resp, out := postAbstract(t, srv, runningExampleXES(t),
		url.Values{"constraints": {"distinct(role) <= 1"}})
	if resp.StatusCode != http.StatusOK || !out.Feasible {
		t.Fatalf("concurrent job failed: status %d %+v", resp.StatusCode, out)
	}

	// The abandoned pipeline must wind down.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := svc.Stats(); st.Jobs.Cancelled >= 1 && st.Jobs.Running == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("pipeline still running after client disconnect: %+v", svc.Stats().Jobs)
}

// Async submission: 202 + job ID, then poll /jobs/{id} to completion. A
// CSV submission must get its result back as CSV, not XES.
func TestHTTPAsyncJobLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	csv := "case,activity,role\n1,a,clerk\n1,b,clerk\n2,a,clerk\n2,b,clerk\n"
	env := AbstractRequest{Format: "csv", Log: csv, Constraints: "distinct(role) <= 1", Async: true}
	body, _ := json.Marshal(env)
	httpResp, err := http.Post(srv.URL+"/abstract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out AbstractResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", httpResp.StatusCode)
	}
	if out.JobID == "" {
		t.Fatal("no job ID in async response")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var job AbstractResponse
		getJSON(t, srv.URL+"/jobs/"+out.JobID, &job)
		if job.State == string(StateDone) {
			if !job.Feasible || job.Abstracted == "" {
				t.Fatalf("done job incomplete: %+v", job)
			}
			if !strings.HasPrefix(strings.TrimSpace(job.Abstracted), "case,") {
				t.Fatalf("CSV submission polled back non-CSV result: %.60q", job.Abstracted)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("async job did not reach done")
}

// Malformed numeric query parameters must 400, not silently become 0
// (maxChecks=0 means an *unlimited* budget).
func TestHTTPMalformedIntIs400(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	resp, err := http.Post(srv.URL+"/abstract?constraints=%7Cg%7C+%3C%3D+8&maxChecks=10k",
		"application/xml", strings.NewReader(runningExampleXES(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHealthzAndErrors(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	var h map[string]string
	getJSON(t, srv.URL+"/healthz", &h)
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}
	// Unparseable constraints are a 400, not a 500.
	resp, err := http.Post(srv.URL+"/abstract?constraints="+url.QueryEscape("nonsense((("),
		"application/xml", strings.NewReader(runningExampleXES(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	// Unknown job is a 404.
	jr, err := http.Get(srv.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", jr.StatusCode)
	}
}

func getJSON(t *testing.T, u string, v any) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", u, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
}

// TestHTTPBatchAbstract exercises the batch form of POST /abstract: several
// constraint sets against one uploaded log, via both the JSON envelope and
// the repeated-query-parameter raw form. The solves share the log's live
// session, observable as session hits on /stats.
func TestHTTPBatchAbstract(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	logXES := runningExampleXES(t)

	// JSON envelope.
	env := map[string]any{
		"format":         "xes",
		"log":            logXES,
		"constraintSets": []string{"distinct(role) <= 1", "distinct(role) <= 1\n|g| <= 2", "|g| <= 3"},
	}
	body, _ := json.Marshal(env)
	resp, err := http.Post(srv.URL+"/abstract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(batch.Results))
	}
	for i, item := range batch.Results {
		if item.Error != "" {
			t.Fatalf("item %d error: %s", i, item.Error)
		}
		if !item.Feasible {
			t.Fatalf("item %d infeasible", i)
		}
		if item.Abstracted == "" {
			t.Fatalf("item %d missing abstracted log", i)
		}
	}
	if batch.Results[0].Constraints != "distinct(role) <= 1" {
		t.Fatalf("item 0 echoes %q", batch.Results[0].Constraints)
	}
	st := svc.Stats()
	if st.Sessions.Misses != 1 || st.Sessions.Hits != 2 {
		t.Fatalf("session stats after batch = %+v, want 1 miss + 2 hits", st.Sessions)
	}

	// Raw body + repeated constraints parameters; the second set repeats a
	// set from the JSON batch, so it must come from the result cache.
	u := srv.URL + "/abstract?" + url.Values{"constraints": {"|g| <= 2", "|g| <= 3"}}.Encode()
	resp2, err := http.Post(u, "application/xml", strings.NewReader(logXES))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("raw batch status = %d", resp2.StatusCode)
	}
	var batch2 BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&batch2); err != nil {
		t.Fatal(err)
	}
	if len(batch2.Results) != 2 {
		t.Fatalf("raw batch results = %d, want 2", len(batch2.Results))
	}
	if batch2.Results[0].Error != "" || !batch2.Results[0].Feasible {
		t.Fatalf("raw batch item 0: %+v", batch2.Results[0])
	}
	if !batch2.Results[1].Cached {
		t.Fatal("repeated set should be served from the result cache")
	}
}

// TestHTTPBatchValidation pins the batch error paths: async is rejected,
// a malformed set fails the whole batch with 400, and mixing constraints
// with constraintSets is ambiguous.
func TestHTTPBatchValidation(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	logXES := runningExampleXES(t)
	post := func(env map[string]any) *http.Response {
		t.Helper()
		body, _ := json.Marshal(env)
		resp, err := http.Post(srv.URL+"/abstract", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(map[string]any{"log": logXES, "format": "xes",
		"constraintSets": []string{"|g| <= 2"}, "async": true}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async batch status = %d, want 400", resp.StatusCode)
	}
	if resp := post(map[string]any{"log": logXES, "format": "xes",
		"constraintSets": []string{"|g| <= 2", "not a constraint !!"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed set status = %d, want 400", resp.StatusCode)
	}
	if resp := post(map[string]any{"log": logXES, "format": "xes", "constraints": "|g| <= 2",
		"constraintSets": []string{"|g| <= 3"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed constraints status = %d, want 400", resp.StatusCode)
	}
}

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/stream"
)

// maxStreamLineBytes caps one NDJSON line (a single trace) on POST /stream.
// The request body as a whole is unbounded — that is the point of
// streaming; memory is bounded by the window, not the stream length.
const maxStreamLineBytes = 1 << 20

// maxStreamWindow caps the window parameter: the abstractor allocates its
// ring buffer eagerly, so an unbounded client-supplied window would let a
// single request reserve arbitrary memory before any trace is read.
const maxStreamWindow = 100_000

// StreamEvent is one event on the /stream NDJSON wire. Attrs values may be
// strings, numbers, or booleans; timestamps ride in Time as RFC 3339.
type StreamEvent struct {
	Class string         `json:"class"`
	Time  string         `json:"time,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// StreamTrace is one NDJSON input line of POST /stream: a complete trace.
type StreamTrace struct {
	ID     string        `json:"id,omitempty"`
	Events []StreamEvent `json:"events"`
}

// StreamLine is one NDJSON output line of POST /stream: the abstraction of
// the corresponding input trace, or a terminal error. Regrouped marks
// arrivals that triggered a pipeline run on the window.
type StreamLine struct {
	ID        string        `json:"id,omitempty"`
	Events    []StreamEvent `json:"events,omitempty"`
	Regrouped bool          `json:"regrouped,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// streamAck is the first NDJSON output line: it echoes the stream's pinned
// parameters (creation-time values; appends cannot change them).
type streamAck struct {
	Stream         string  `json:"stream,omitempty"`
	Created        bool    `json:"created"`
	Window         int     `json:"window"`
	RefreshEvery   int     `json:"refreshEvery"`
	DriftThreshold float64 `json:"driftThreshold"`
}

// toTrace validates and converts a wire trace into the event model.
func (wt *StreamTrace) toTrace(lineNo int) (eventlog.Trace, error) {
	tr := eventlog.Trace{ID: wt.ID}
	if len(wt.Events) == 0 {
		return tr, fmt.Errorf("line %d: trace has no events", lineNo)
	}
	for i, we := range wt.Events {
		if we.Class == "" {
			return tr, fmt.Errorf("line %d: event %d has no class", lineNo, i+1)
		}
		ev := eventlog.Event{Class: we.Class}
		if we.Time != "" {
			ts, err := time.Parse(time.RFC3339Nano, we.Time)
			if err != nil {
				return tr, fmt.Errorf("line %d: event %d: time %q is not RFC 3339", lineNo, i+1, we.Time)
			}
			ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(ts))
		}
		for k, v := range we.Attrs {
			switch x := v.(type) {
			case string:
				ev.SetAttr(k, eventlog.String(x))
			case float64:
				ev.SetAttr(k, eventlog.Float(x))
			case bool:
				ev.SetAttr(k, eventlog.Bool(x))
			default:
				return tr, fmt.Errorf("line %d: event %d: attribute %q must be a string, number, or boolean", lineNo, i+1, k)
			}
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

// fromTrace renders an abstracted (or passed-through) trace as an output
// line. Attribute maps serialise with sorted keys (encoding/json), so the
// line bytes are deterministic.
func fromTrace(tr eventlog.Trace, regrouped bool) StreamLine {
	line := StreamLine{ID: tr.ID, Regrouped: regrouped}
	for i := range tr.Events {
		ev := &tr.Events[i]
		we := StreamEvent{Class: ev.Class}
		for k, v := range ev.Attrs {
			if k == eventlog.AttrTimestamp && v.Kind == eventlog.KindTime {
				we.Time = v.Time.Format(time.RFC3339Nano)
				continue
			}
			if we.Attrs == nil {
				we.Attrs = make(map[string]any, len(ev.Attrs))
			}
			switch v.Kind {
			case eventlog.KindString:
				we.Attrs[k] = v.Str
			case eventlog.KindInt, eventlog.KindFloat:
				we.Attrs[k] = v.Num
			case eventlog.KindBool:
				we.Attrs[k] = v.Bool
			case eventlog.KindTime:
				we.Attrs[k] = v.Time.Format(time.RFC3339Nano)
			}
		}
		line.Events = append(line.Events, we)
	}
	return line
}

// buildLiveStream parses the creation query parameters into a live stream.
// Parameters are pinned at creation; later appends to the same name ignore
// them (the ack line echoes the pinned values).
func buildLiveStream(s *Service, name string, q url.Values) (*liveStream, error) {
	text := q.Get("constraints")
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("%w: creating a stream requires the constraints parameter", ErrInvalidRequest)
	}
	set, err := constraints.ParseSet(text)
	if err != nil {
		return nil, fmt.Errorf("%w: parsing constraints: %v", ErrInvalidRequest, err)
	}
	cfg := stream.Config{
		DriftThreshold: stream.DefaultDriftThreshold,
		RunPipeline:    s.streamPipeline,
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"window", &cfg.WindowSize},
		{"refresh", &cfg.RefreshEvery},
		{"workers", &cfg.Pipeline.Workers},
		{"beamWidth", &cfg.Pipeline.BeamWidth},
		{"maxChecks", &cfg.Pipeline.Budget.MaxChecks},
	} {
		raw := q.Get(p.name)
		if raw == "" {
			continue
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: query parameter %s=%q is not an integer", ErrInvalidRequest, p.name, raw)
		}
		if n < 0 {
			return nil, fmt.Errorf("%w: query parameter %s=%d must not be negative", ErrInvalidRequest, p.name, n)
		}
		*p.dst = n
	}
	if cfg.WindowSize > maxStreamWindow {
		return nil, fmt.Errorf("%w: window %d exceeds the maximum of %d traces", ErrInvalidRequest, cfg.WindowSize, maxStreamWindow)
	}
	if raw := q.Get("drift"); raw != "" {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: query parameter drift=%q is not a number (negative disables drift detection)", ErrInvalidRequest, raw)
		}
		cfg.DriftThreshold = f
	}
	mode, err := parseMode(q.Get("mode"))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	cfg.Pipeline.Mode = mode
	return &liveStream{
		name:        name,
		constraints: text,
		abst:        stream.New(set, cfg),
		created:     time.Now(),
	}, nil
}

// handleStream serves POST /stream: NDJSON traces in, NDJSON abstractions
// out, one line per arrival, flushed as they are produced. A `stream` query
// parameter names a persistent stream (create-or-append; state survives
// across requests in the bounded LRU until closed or evicted); without it
// the stream lives for this one request. Malformed input and push failures
// terminate the response with an error line — the HTTP status is already
// committed by then, so NDJSON consumers must treat a line with `error` as
// the terminal event.
func handleStream(s *Service, w http.ResponseWriter, r *http.Request) {
	if s.streams == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("streaming is disabled on this server"))
		return
	}
	q := r.URL.Query()
	name := q.Get("stream")
	st, created, err := s.streams.ensure(name, func() (*liveStream, error) {
		return buildLiveStream(s, name, q)
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	if name == "" {
		defer s.streams.retireAnonymous(st)
	}

	// Without full-duplex, net/http drains the unread request body on the
	// handler's first response write (deadlocking against a client that
	// streams arrivals and reads results as they come); with it, reading
	// the body and writing responses interleave freely.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		rc.Flush()
	}
	cfg := st.abst.Config()
	emit(streamAck{
		Stream:         name,
		Created:        created,
		Window:         cfg.WindowSize,
		RefreshEvery:   cfg.RefreshEvery,
		DriftThreshold: cfg.DriftThreshold,
	})

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxStreamLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var wt StreamTrace
		if err := json.Unmarshal(raw, &wt); err != nil {
			emit(StreamLine{Error: fmt.Sprintf("line %d: %v", lineNo, err)})
			return
		}
		tr, err := wt.toTrace(lineNo)
		if err != nil {
			emit(StreamLine{Error: err.Error()})
			return
		}
		out, regrouped, err := st.push(r.Context(), tr)
		if err != nil {
			emit(StreamLine{Error: fmt.Sprintf("line %d: %v", lineNo, err)})
			return
		}
		emit(fromTrace(out, regrouped))
	}
	if err := sc.Err(); err != nil {
		emit(StreamLine{Error: fmt.Sprintf("reading stream: %v", err)})
	}
}

// handleStreamGet serves GET /stream/{name}: a snapshot of a live stream.
func handleStreamGet(s *Service, w http.ResponseWriter, r *http.Request) {
	if s.streams == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("streaming is disabled on this server"))
		return
	}
	st, ok := s.streams.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: stream %q", ErrNotFound, r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, st.snapshot())
}

// handleStreamClose serves POST /stream/{name}/close: drops the named
// stream's state and returns its final snapshot.
func handleStreamClose(s *Service, w http.ResponseWriter, r *http.Request) {
	if s.streams == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("streaming is disabled on this server"))
		return
	}
	st, ok := s.streams.close(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: stream %q", ErrNotFound, r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, st.snapshot())
}

package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/stream"
)

// StreamStats aggregates the streaming workload's counters for /stats.
// Regroupings counts pipeline runs triggered by stream windows (cache hits
// included); Traces counts arrivals pushed across all streams, live and
// retired.
type StreamStats struct {
	Live        int   `json:"live"`
	Capacity    int   `json:"capacity"`
	Created     int64 `json:"created"`
	Closed      int64 `json:"closed"`
	Evicted     int64 `json:"evicted"`
	Traces      int64 `json:"traces"`
	Regroupings int64 `json:"regroupings"`
	Drifts      int64 `json:"drifts"`
}

// streamTotals is the manager-wide work accounting, fed delta-per-push by
// every live stream. Totals accumulate at push time rather than at stream
// retirement, so arrivals on a stream that was evicted or closed while a
// request still held it are counted too.
type streamTotals struct {
	traces      atomic.Int64
	regroupings atomic.Int64
	drifts      atomic.Int64
}

// liveStream is one named (or anonymous) online abstractor with its
// serialisation lock: the stream.Abstractor is not concurrency-safe, so
// every push and snapshot holds mu. pushes is atomic so /stats and
// snapshots never contend with a long regroup.
type liveStream struct {
	mu   sync.Mutex
	name string
	// constraints echoes the creation-time constraint text; stream
	// parameters are pinned at creation and later appends cannot change
	// them.
	constraints string
	abst        *stream.Abstractor
	created     time.Time
	totals      *streamTotals

	pushes atomic.Int64
}

// push serialises one arrival through the abstractor and folds the
// arrival's deltas into the manager totals; regrouped reports whether this
// arrival triggered a pipeline run.
func (st *liveStream) push(ctx context.Context, tr eventlog.Trace) (out eventlog.Trace, regrouped bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	beforeRegroups, beforeDrifts := st.abst.Regroupings, st.abst.Drifts
	out, err = st.abst.PushContext(ctx, tr)
	st.pushes.Add(1)
	st.totals.traces.Add(1)
	st.totals.regroupings.Add(int64(st.abst.Regroupings - beforeRegroups))
	st.totals.drifts.Add(int64(st.abst.Drifts - beforeDrifts))
	return out, st.abst.Regroupings > beforeRegroups, err
}

// StreamSnapshot is the state view returned by GET /stream/{name} and the
// close endpoint.
type StreamSnapshot struct {
	Stream      string  `json:"stream,omitempty"`
	Constraints string  `json:"constraints"`
	WindowLen   int     `json:"windowLen"`
	Traces      int64   `json:"traces"`
	Regroupings int64   `json:"regroupings"`
	Drifts      int64   `json:"drifts"`
	DriftScore  float64 `json:"driftScore"`
	// GroupingOK is false before the first feasible regrouping (arrivals
	// pass through unabstracted until one succeeds).
	GroupingOK    bool       `json:"groupingOk"`
	GroupClasses  [][]string `json:"groupClasses,omitempty"`
	ActivityNames []string   `json:"activityNames,omitempty"`
	Created       time.Time  `json:"created"`
}

func (st *liveStream) snapshot() StreamSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	grouping := st.abst.Grouping()
	return StreamSnapshot{
		Stream:        st.name,
		Constraints:   st.constraints,
		WindowLen:     st.abst.WindowLen(),
		Traces:        st.pushes.Load(),
		Regroupings:   int64(st.abst.Regroupings),
		Drifts:        int64(st.abst.Drifts),
		DriftScore:    st.abst.DriftScore(),
		GroupingOK:    grouping != nil,
		GroupClasses:  grouping,
		ActivityNames: st.abst.ActivityNames(),
		Created:       st.created,
	}
}

// streamManager holds the named per-stream abstractor states in a bounded
// LRU beside the session cache. Creating a stream beyond capacity evicts
// the least recently used one (its state is dropped; a later request under
// the same name starts a fresh stream). Anonymous streams (empty name) are
// never registered: they live for one request and are retired when it
// ends.
type streamManager struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	closed  bool

	created int64
	closedN int64
	evicted int64
	// totals accumulate per push across every stream this manager ever
	// served (live, evicted, or closed — work done on a stream evicted
	// mid-request still counts), so /stats totals are monotonic.
	totals streamTotals
}

func newStreamManager(capacity int) *streamManager {
	return &streamManager{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// ensure returns the named live stream, creating it with build() when
// absent (evicting the LRU victim beyond capacity). An empty name builds
// an unregistered one-request stream. build runs under the manager lock;
// it only parses parameters, never the log.
func (m *streamManager) ensure(name string, build func() (*liveStream, error)) (st *liveStream, createdNew bool, err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, ErrClosed
	}
	if name != "" {
		if el, ok := m.entries[name]; ok {
			m.order.MoveToFront(el)
			m.mu.Unlock()
			return el.Value.(*liveStream), false, nil
		}
	}
	st, err = build()
	if err != nil {
		m.mu.Unlock()
		return nil, false, err
	}
	st.totals = &m.totals
	m.created++
	if name != "" {
		m.entries[name] = m.order.PushFront(st)
		for m.order.Len() > m.cap {
			oldest := m.order.Back()
			m.order.Remove(oldest)
			delete(m.entries, oldest.Value.(*liveStream).name)
			m.evicted++
		}
	}
	m.mu.Unlock()
	return st, true, nil
}

// get returns a registered stream without creating, bumping its recency.
func (m *streamManager) get(name string) (*liveStream, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[name]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*liveStream), true
}

// close removes a registered stream; its state is dropped.
func (m *streamManager) close(name string) (*liveStream, bool) {
	m.mu.Lock()
	el, ok := m.entries[name]
	if !ok {
		m.mu.Unlock()
		return nil, false
	}
	m.order.Remove(el)
	delete(m.entries, name)
	m.closedN++
	m.mu.Unlock()
	return el.Value.(*liveStream), true
}

// retireAnonymous counts a one-request stream's end as a close.
func (m *streamManager) retireAnonymous(*liveStream) {
	m.mu.Lock()
	m.closedN++
	m.mu.Unlock()
}

// closeAll drains the manager on service shutdown: all live streams are
// dropped and new /stream requests are rejected with ErrClosed.
func (m *streamManager) closeAll() {
	m.mu.Lock()
	m.closed = true
	m.closedN += int64(m.order.Len())
	m.entries = make(map[string]*list.Element)
	m.order.Init()
	m.mu.Unlock()
}

// Stats snapshots the streaming counters.
func (m *streamManager) Stats() StreamStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return StreamStats{
		Live:        m.order.Len(),
		Capacity:    m.cap,
		Created:     m.created,
		Closed:      m.closedN,
		Evicted:     m.evicted,
		Traces:      m.totals.traces.Load(),
		Regroupings: m.totals.regroupings.Load(),
		Drifts:      m.totals.drifts.Load(),
	}
}

// streamPipeline is the PipelineFunc stream regroupings run under: it
// shares the service's machinery instead of paying for a private pipeline —
// the result cache short-circuits a window already solved under the same
// constraints and config (replayed or duplicated streams), a live session
// for the same window content is reused when one exists (without inserting
// stream windows into the session LRU, which would thrash the /abstract
// workload's entries), the run occupies one of the service's bounded
// concurrency slots, and service shutdown cancels it mid-frontier.
func (s *Service) streamPipeline(ctx context.Context, window *eventlog.Log, set *constraints.Set, cfg core.Config) (*core.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	if cfg.Workers == 0 && s.opts.DefaultWorkers > 0 {
		cfg.Workers = s.opts.DefaultWorkers
	}
	req := Request{Log: window, Constraints: set, Config: cfg}
	key := ""
	if Cacheable(cfg) {
		key = requestKey(req.logDigest(), set, cfg)
		if res, ok := s.cache.Get(key); ok {
			return res, nil
		}
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("service: stream regroup: %w", ctx.Err())
	}
	defer func() { <-s.sem }()

	var (
		res *JobResult
		err error
	)
	if sess, ok := s.peekSession(req.logDigest()); ok {
		res, err = sess.Solve(ctx, set, cfg)
	} else {
		res, err = core.RunContext(ctx, window, set, cfg)
	}
	if err == nil && key != "" {
		s.cache.Put(key, res)
	}
	return res, err
}

// peekSession returns a live session for the digest when one exists,
// without admitting a new entry on miss.
func (s *Service) peekSession(digest string) (*core.Session, bool) {
	if s.sessions == nil {
		return nil, false
	}
	return s.sessions.peek(digest)
}

package service

import (
	"context"
	"sync"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func mustSet(t *testing.T, text string) *constraints.Set {
	t.Helper()
	set, err := constraints.ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestSessionReuseAcrossConstraintSets is the layering contract of the
// session cache: a second request on the same log with a *different*
// constraint set misses the result cache but hits the session cache, and
// returns exactly what a cold run returns.
func TestSessionReuseAcrossConstraintSets(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	log := procgen.RunningExampleTable1()

	req1 := Request{Log: log, Constraints: mustSet(t, "distinct(role) <= 1"), Config: core.Config{Mode: core.DFGUnbounded}}
	req2 := Request{Log: log, Constraints: mustSet(t, "distinct(role) <= 1\n|g| <= 2"), Config: core.Config{Mode: core.DFGUnbounded}}

	res1, meta1, err := svc.Do(context.Background(), req1)
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Cached || !res1.Feasible {
		t.Fatalf("first request: cached=%v feasible=%v", meta1.Cached, res1.Feasible)
	}
	res2, meta2, err := svc.Do(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Cached {
		t.Fatal("different constraints must miss the result cache")
	}
	st := svc.Stats()
	if st.Sessions.Misses != 1 || st.Sessions.Hits != 1 {
		t.Fatalf("session stats = %+v, want 1 miss then 1 hit", st.Sessions)
	}
	if st.Sessions.Entries != 1 {
		t.Fatalf("session entries = %d, want 1", st.Sessions.Entries)
	}
	// Memory accounting: the live session's columnar index footprint is
	// surfaced, and it is (much) smaller than the pointer-heavy parsed log
	// the session released at construction.
	if st.Sessions.IndexBytes <= 0 {
		t.Fatalf("session index bytes = %d, want > 0", st.Sessions.IndexBytes)
	}
	if naive := eventlog.EstimateLogBytes(log); st.Sessions.IndexBytes >= naive {
		t.Fatalf("index bytes %d not below the log's estimated %d", st.Sessions.IndexBytes, naive)
	}

	// The warm-session result must be identical to a cold one-shot run.
	cold, err := core.Run(log, mustSet(t, "distinct(role) <= 1\n|g| <= 2"), core.Config{Mode: core.DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Distance != cold.Distance || res2.NumCandidates != cold.NumCandidates ||
		res2.ConstraintChecks != cold.ConstraintChecks {
		t.Fatalf("warm session result diverged: dist %v vs %v, candidates %d vs %d, checks %d vs %d",
			res2.Distance, cold.Distance, res2.NumCandidates, cold.NumCandidates,
			res2.ConstraintChecks, cold.ConstraintChecks)
	}
}

// TestSessionCacheEviction pins the LRU bound: with capacity 1, alternating
// logs evict each other and the counters say so.
func TestSessionCacheEviction(t *testing.T) {
	svc := New(Options{SessionCapacity: 1})
	defer svc.Close()
	logA := procgen.RunningExampleTable1()
	logB := procgen.RunningExample(40, 3)
	cfg := core.Config{Mode: core.DFGUnbounded}

	do := func(log *eventlog.Log, text string) {
		t.Helper()
		if _, _, err := svc.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, text), Config: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	do(logA, "distinct(role) <= 1")
	do(logB, "distinct(role) <= 1")           // evicts A's session
	do(logA, "distinct(role) <= 1\n|g| <= 2") // rebuilt: session miss

	st := svc.Stats().Sessions
	if st.Capacity != 1 || st.Entries != 1 {
		t.Fatalf("capacity/entries = %d/%d, want 1/1", st.Capacity, st.Entries)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (A, B, A-again)", st.Misses)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
}

// TestNoSessionsDisablesCache checks the opt-out: with NoSessions the
// service falls back to a full pipeline per job and reports zero capacity.
func TestNoSessionsDisablesCache(t *testing.T) {
	svc := New(Options{NoSessions: true})
	defer svc.Close()
	req := roleRequest(t)
	if _, _, err := svc.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats().Sessions
	if st != (SessionStats{}) {
		t.Fatalf("session stats with NoSessions = %+v, want zero", st)
	}
}

// TestSessionCacheConcurrentSameLog races many requests for one new log:
// the once gate must coalesce them onto a single session build, and every
// request must still succeed. Run under -race via `make race`.
func TestSessionCacheConcurrentSameLog(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	log := procgen.RunningExampleTable1()
	texts := []string{
		"distinct(role) <= 1",
		"distinct(role) <= 1\n|g| <= 2",
		"|g| <= 3",
		"distinct(role) <= 1\n|g| <= 4",
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(text string) {
			defer wg.Done()
			set, err := constraints.ParseSet(text)
			if err != nil {
				t.Error(err)
				return
			}
			req := Request{Log: log, Constraints: set, Config: core.Config{Mode: core.DFGUnbounded}}
			if _, _, err := svc.Do(context.Background(), req); err != nil {
				t.Error(err)
			}
		}(texts[i%len(texts)])
	}
	wg.Wait()
	st := svc.Stats().Sessions
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 session build for one log", st.Misses)
	}
	// 8 requests over 4 distinct problems: identical pairs coalesce onto
	// one job (or hit the result cache), so exactly 4 pipeline runs touch
	// the session cache — one build, three reuses.
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}
}

// TestGetOrCreateNeverReturnsNilSession hammers getOrCreate directly with
// concurrent callers racing the first build. Every caller — creator or
// latecomer — must block until the build finishes and receive the same
// non-nil session; a nil (session, err) pair means a latecomer slipped past
// the build gate. Run under -race via `make race`.
func TestGetOrCreateNeverReturnsNilSession(t *testing.T) {
	log := procgen.RunningExampleTable1()
	for round := 0; round < 20; round++ {
		c := newSessionCache(4, nil)
		var wg sync.WaitGroup
		sessions := make([]*core.Session, 16)
		for i := range sessions {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sess, err := c.getOrCreate("digest", staticLog(log))
				if err != nil {
					t.Errorf("getOrCreate: %v", err)
					return
				}
				sessions[i] = sess
			}(i)
		}
		wg.Wait()
		for i, sess := range sessions {
			if sess == nil {
				t.Fatalf("round %d: caller %d got a nil session with nil error", round, i)
			}
			if sess != sessions[0] {
				t.Fatalf("round %d: caller %d got a different session than caller 0", round, i)
			}
		}
	}
}

// TestSessionMemoLimitRetiresSession pins the memo-growth bound: with a
// limit of 1 entry, every solve outgrows the session, so each request on
// the same log rebuilds a fresh one (a session miss + an eviction) instead
// of accumulating memo entries forever.
func TestSessionMemoLimitRetiresSession(t *testing.T) {
	svc := New(Options{SessionMemoLimit: 1})
	defer svc.Close()
	log := procgen.RunningExampleTable1()
	cfg := core.Config{Mode: core.DFGUnbounded}
	for _, text := range []string{"distinct(role) <= 1", "|g| <= 3", "|g| <= 2"} {
		if _, _, err := svc.Do(context.Background(), Request{Log: log, Constraints: mustSet(t, text), Config: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats().Sessions
	if st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("session stats = %+v, want 3 misses and no hits (every solve retires the session)", st)
	}
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
}

// staticLog adapts an already-parsed log to getOrCreate's lazy-loader
// signature for tests that build their logs up front.
func staticLog(log *eventlog.Log) func() (*eventlog.Log, error) {
	return func() (*eventlog.Log, error) { return log, nil }
}

// Pipeline serving: RunPipeline executes a staged abstract→discover→conform
// run (internal/pipeline) through the service's concurrency slots, layered
// on three caches — the per-stage state LRU here (keyed by chain keys, so a
// re-run with a changed tail stage adopts every unchanged upstream state),
// the shared result cache + disk tier for the abstract stage, and the
// session LRU for solver state on the (possibly filtered) working log.
package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/pipeline"
)

// PipelineRequest is one staged run: a raw log, optional user constraints,
// and a stage list (empty = the default suggest→abstract→discover→conform).
type PipelineRequest struct {
	Log         *eventlog.Log
	Constraints *constraints.Set // nil or empty lets a suggest stage supply them
	Stages      []pipeline.StageSpec
}

// PipelineOutcome reports a finished run.
type PipelineOutcome struct {
	Stages []pipeline.StageResult
	State  *pipeline.State
}

// RunPipeline executes the request's stages synchronously under a
// concurrency slot (the same pool abstraction jobs run in). Cancelling ctx
// stops the run at the next stage boundary or solver sampling point;
// service shutdown cancels it too.
func (s *Service) RunPipeline(ctx context.Context, req PipelineRequest) (*PipelineOutcome, error) {
	if req.Log == nil || len(req.Log.Traces) == 0 {
		return nil, fmt.Errorf("%w: empty log", ErrInvalidRequest)
	}
	stages, err := pipeline.BuildStages(req.Stages)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	set := req.Constraints
	if set == nil {
		set = constraints.NewSet()
	}
	digest := LogDigest(req.Log)
	base := &pipeline.State{IndexKey: digest}
	if set.Len() > 0 {
		base.Constraints = set
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.active.Add(1)
	s.mu.Unlock()
	defer s.active.Done()

	// Tie the run to both the caller and the service lifetime.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	select {
	case s.sem <- struct{}{}:
	case <-runCtx.Done():
		return nil, fmt.Errorf("service: %w", runCtx.Err())
	}
	defer func() { <-s.sem }()

	// The working index: reuse a live session's frozen index when the log
	// is already known, otherwise intern the upload once.
	if s.sessions != nil {
		if sess, ok := s.sessions.peek(digest); ok {
			base.Index = sess.Index()
		}
	}
	if base.Index == nil {
		base.Index = eventlog.NewIndex(req.Log)
	}

	// Fail fast on an unsatisfiable stage list before burning a slot on
	// partial work; Run re-validates, but this keeps the error a 400.
	if err := pipeline.Validate(stages, base); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}

	env, flush := s.pipelineEnv()
	baseKey := pipeline.BaseKey(digest, canonicalConstraints(set))
	out, err := pipeline.Run(runCtx, stages, base, baseKey, env)
	flush()
	if err != nil {
		return nil, err
	}
	s.pipelineRuns.Add(1)
	return &PipelineOutcome{Stages: out.Stages, State: out.State}, nil
}

// pipelineEnv assembles the engine hooks over the service's caches. The
// returned flush applies the session memo-growth bound to every session the
// run acquired (mirroring solve()'s retirement of overgrown sessions).
func (s *Service) pipelineEnv() (*pipeline.Env, func()) {
	env := &pipeline.Env{}
	if s.pipe != nil {
		env.Cache = s.pipe
	}
	env.LookupAbstract = func(indexKey string, set *constraints.Set, cfg core.Config) (*core.Result, bool) {
		if !Cacheable(cfg) {
			return nil, false
		}
		return s.cache.Get(requestKey(indexKey, set, cfg))
	}
	env.StoreAbstract = func(indexKey string, set *constraints.Set, cfg core.Config, res *core.Result) {
		if !Cacheable(cfg) {
			return
		}
		key := requestKey(indexKey, set, cfg)
		s.cache.Put(key, res)
		if s.store != nil {
			s.store.saveResultAsync(key, res)
		}
	}
	type held struct {
		key  string
		sess *core.Session
	}
	var acquired []held
	if s.sessions != nil {
		env.AcquireSession = func(ctx context.Context, key string, x *eventlog.Index) (*core.Session, error) {
			sess, err := s.sessions.getOrCreateIndex(key, x)
			if err == nil {
				acquired = append(acquired, held{key, sess})
			}
			return sess, err
		}
	}
	flush := func() {
		for _, h := range acquired {
			if h.sess.MemoSize() > s.opts.SessionMemoLimit {
				s.sessions.drop(h.key, h.sess)
			}
		}
	}
	return env, flush
}

// StageCounters is one stage kind's cache accounting.
type StageCounters struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// PipelineStats is the /stats "pipeline" payload: per-stage cache hit/miss
// counters plus the state LRU's occupancy, so cache effectiveness is
// observable without log spelunking.
type PipelineStats struct {
	// Runs counts completed pipeline runs.
	Runs int64 `json:"runs"`
	// Entries/Capacity/Evictions describe the per-stage state LRU.
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
	// Stages maps stage name → hit/miss counters. A hit means the stage
	// (and, by key chaining, its whole upstream prefix) was served from
	// cache without executing.
	Stages map[string]StageCounters `json:"stages,omitempty"`
}

// stageCache is the per-stage state LRU backing pipeline.StageCache. One
// flat LRU holds every stage kind's states (an abstract state is worth far
// more than a conform state, but both are bounded by the same churn), with
// hit/miss counters kept per stage name for /stats.
type stageCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	counters map[string]*StageCounters
	evicted  int64
}

type stageItem struct {
	key   string
	state *pipeline.State
}

func newStageCache(capacity int) *stageCache {
	return &stageCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		counters: make(map[string]*StageCounters),
	}
}

func (c *stageCache) counterLocked(stage string) *StageCounters {
	ctr, ok := c.counters[stage]
	if !ok {
		ctr = &StageCounters{}
		c.counters[stage] = ctr
	}
	return ctr
}

// Get implements pipeline.StageCache.
func (c *stageCache) Get(stage, key string) (*pipeline.State, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.counterLocked(stage)
	el, ok := c.entries[key]
	if !ok {
		ctr.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	ctr.Hits++
	return el.Value.(*stageItem).state, true
}

// Put implements pipeline.StageCache.
func (c *stageCache) Put(stage, key string, st *pipeline.State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*stageItem).state = st
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&stageItem{key: key, state: st})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*stageItem).key)
		c.evicted++
	}
}

// Stats snapshots the cache counters.
func (c *stageCache) Stats() PipelineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := PipelineStats{
		Entries:   len(c.entries),
		Capacity:  c.cap,
		Evictions: c.evicted,
		Stages:    make(map[string]StageCounters, len(c.counters)),
	}
	for name, ctr := range c.counters {
		st.Stages[name] = *ctr
	}
	return st
}

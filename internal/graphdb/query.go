package graphdb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// queryAST is a parsed query.
type queryAST struct {
	srcLabel, dstLabel string
	edgeType           string
	minHops, maxHops   int
	where              cond
}

// cond is a WHERE condition over a path.
type cond interface {
	eval(g *Graph, path []int) bool
}

type andCond struct{ l, r cond }

func (c andCond) eval(g *Graph, p []int) bool { return c.l.eval(g, p) && c.r.eval(g, p) }

type orCond struct{ l, r cond }

func (c orCond) eval(g *Graph, p []int) bool { return c.l.eval(g, p) || c.r.eval(g, p) }

type notCond struct{ inner cond }

func (c notCond) eval(g *Graph, p []int) bool { return !c.inner.eval(g, p) }

// distinctCond: distinct(p.prop) op n — number of distinct property values
// along the path. Nodes lacking the property contribute nothing.
type distinctCond struct {
	prop string
	op   string
	n    int
}

func (c distinctCond) eval(g *Graph, p []int) bool {
	seen := make(map[string]struct{})
	for _, id := range p {
		if v, ok := g.nodes[id].Props[c.prop]; ok {
			seen[v] = struct{}{}
		}
	}
	return cmpInt(len(seen), c.op, c.n)
}

// allSameCond: allsame(p.prop) — at most one distinct value along the path.
type allSameCond struct{ prop string }

func (c allSameCond) eval(g *Graph, p []int) bool {
	return distinctCond{prop: c.prop, op: "<=", n: 1}.eval(g, p)
}

// containsCond: contains(p, 'name') — some node's "name" property equals
// the literal.
type containsCond struct{ name string }

func (c containsCond) eval(g *Graph, p []int) bool {
	for _, id := range p {
		if g.nodes[id].Props["name"] == c.name {
			return true
		}
	}
	return false
}

// lengthCond: length(p) op n — number of nodes on the path.
type lengthCond struct {
	op string
	n  int
}

func (c lengthCond) eval(_ *Graph, p []int) bool { return cmpInt(len(p), c.op, c.n) }

func cmpInt(v int, op string, n int) bool {
	switch op {
	case "<=":
		return v <= n
	case ">=":
		return v >= n
	case "<":
		return v < n
	case ">":
		return v > n
	case "=", "==":
		return v == n
	}
	return false
}

// --- Lexer -----------------------------------------------------------------

type token struct {
	kind string // ident, num, str, sym
	text string
}

func lex(s string) ([]token, error) {
	var out []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			out = append(out, token{"ident", s[i:j]})
			i = j
		case unicode.IsDigit(c):
			j := i
			for j < len(s) && unicode.IsDigit(rune(s[j])) {
				j++
			}
			out = append(out, token{"num", s[i:j]})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("graphdb: unterminated string at %d", i)
			}
			out = append(out, token{"str", s[i+1 : j]})
			i = j + 1
		default:
			// Multi-char symbols first.
			for _, sym := range []string{"<=", ">=", "==", "->", ".."} {
				if strings.HasPrefix(s[i:], sym) {
					out = append(out, token{"sym", sym})
					i += len(sym)
					goto next
				}
			}
			out = append(out, token{"sym", string(c)})
			i++
		next:
		}
	}
	return out, nil
}

// --- Parser ----------------------------------------------------------------

type qparser struct {
	toks []token
	pos  int
}

func (p *qparser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{}
}

func (p *qparser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *qparser) expectSym(s string) error {
	t := p.next()
	if t.kind != "sym" || t.text != s {
		return fmt.Errorf("graphdb: expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *qparser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != "ident" || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("graphdb: expected %s, got %q", kw, t.text)
	}
	return nil
}

// parseQuery parses the full MATCH/WHERE/RETURN form.
func parseQuery(s string) (*queryAST, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q := &queryAST{minHops: 1, maxHops: 1}
	if err := p.expectKeyword("MATCH"); err != nil {
		return nil, err
	}
	// Optional "p =" binding.
	if p.peek().kind == "ident" && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "=" {
		p.next()
		p.next()
	}
	// Source node: (a[:Label])
	if q.srcLabel, err = p.parseNode(); err != nil {
		return nil, err
	}
	// Edge: -[:TYPE*min..max]->
	if err := p.parseEdge(q); err != nil {
		return nil, err
	}
	// Destination node.
	if q.dstLabel, err = p.parseNode(); err != nil {
		return nil, err
	}
	// Optional WHERE.
	if t := p.peek(); t.kind == "ident" && strings.EqualFold(t.text, "WHERE") {
		p.next()
		q.where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	p.next() // return target (p / nodes) — single token, unchecked
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("graphdb: trailing tokens after RETURN")
	}
	return q, nil
}

func (p *qparser) parseNode() (string, error) {
	if err := p.expectSym("("); err != nil {
		return "", err
	}
	label := ""
	if p.peek().kind == "ident" {
		p.next() // variable name, unused
	}
	if p.peek().text == ":" {
		p.next()
		t := p.next()
		if t.kind != "ident" {
			return "", fmt.Errorf("graphdb: expected label, got %q", t.text)
		}
		label = t.text
	}
	return label, p.expectSym(")")
}

func (p *qparser) parseEdge(q *queryAST) error {
	if err := p.expectSym("-"); err != nil {
		return err
	}
	if err := p.expectSym("["); err != nil {
		return err
	}
	if p.peek().text == ":" {
		p.next()
		t := p.next()
		if t.kind != "ident" {
			return fmt.Errorf("graphdb: expected edge type, got %q", t.text)
		}
		q.edgeType = t.text
	}
	if p.peek().text == "*" {
		p.next()
		lo := p.next()
		if lo.kind != "num" {
			return fmt.Errorf("graphdb: expected hop lower bound, got %q", lo.text)
		}
		q.minHops, _ = strconv.Atoi(lo.text)
		if err := p.expectSym(".."); err != nil {
			return err
		}
		hi := p.next()
		if hi.kind != "num" {
			return fmt.Errorf("graphdb: expected hop upper bound, got %q", hi.text)
		}
		q.maxHops, _ = strconv.Atoi(hi.text)
		if q.minHops > q.maxHops {
			return fmt.Errorf("graphdb: hop range %d..%d inverted", q.minHops, q.maxHops)
		}
	}
	if err := p.expectSym("]"); err != nil {
		return err
	}
	return p.expectSym("->")
}

func (p *qparser) parseOr() (cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "ident" && strings.EqualFold(t.text, "OR") {
			p.next()
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			left = orCond{left, right}
		} else {
			return left, nil
		}
	}
}

func (p *qparser) parseAnd() (cond, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "ident" && strings.EqualFold(t.text, "AND") {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = andCond{left, right}
		} else {
			return left, nil
		}
	}
}

func (p *qparser) parseTerm() (cond, error) {
	t := p.peek()
	switch {
	case t.kind == "sym" && t.text == "(":
		p.next()
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		return c, p.expectSym(")")
	case t.kind == "ident" && strings.EqualFold(t.text, "NOT"):
		p.next()
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return notCond{inner}, nil
	case t.kind == "ident":
		return p.parsePredicate()
	}
	return nil, fmt.Errorf("graphdb: unexpected token %q in condition", t.text)
}

func (p *qparser) parsePredicate() (cond, error) {
	fn := p.next().text
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	switch strings.ToLower(fn) {
	case "allsame":
		prop, err := p.parsePathProp()
		if err != nil {
			return nil, err
		}
		return allSameCond{prop}, p.expectSym(")")
	case "distinct":
		prop, err := p.parsePathProp()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		op, n, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		return distinctCond{prop, op, n}, nil
	case "contains":
		p.next() // path variable
		if err := p.expectSym(","); err != nil {
			return nil, err
		}
		lit := p.next()
		if lit.kind != "str" {
			return nil, fmt.Errorf("graphdb: contains expects a quoted name, got %q", lit.text)
		}
		return containsCond{lit.text}, p.expectSym(")")
	case "length":
		p.next() // path variable
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		op, n, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		return lengthCond{op, n}, nil
	}
	return nil, fmt.Errorf("graphdb: unknown predicate %q", fn)
}

// parsePathProp parses "p.prop" and returns the property name.
func (p *qparser) parsePathProp() (string, error) {
	if t := p.next(); t.kind != "ident" {
		return "", fmt.Errorf("graphdb: expected path variable, got %q", t.text)
	}
	if err := p.expectSym("."); err != nil {
		return "", err
	}
	t := p.next()
	if t.kind != "ident" {
		return "", fmt.Errorf("graphdb: expected property name, got %q", t.text)
	}
	return t.text, nil
}

func (p *qparser) parseCmp() (string, int, error) {
	op := p.next()
	if op.kind != "sym" {
		return "", 0, fmt.Errorf("graphdb: expected comparison, got %q", op.text)
	}
	num := p.next()
	if num.kind != "num" {
		return "", 0, fmt.Errorf("graphdb: expected number, got %q", num.text)
	}
	n, err := strconv.Atoi(num.text)
	return op.text, n, err
}

package graphdb

import (
	"sort"
	"testing"
)

// diamond builds a→b→d and a→c→d with org properties.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddNode("Class", map[string]string{"name": "a", "org": "X"})
	b := g.AddNode("Class", map[string]string{"name": "b", "org": "X"})
	c := g.AddNode("Class", map[string]string{"name": "c", "org": "Y"})
	d := g.AddNode("Class", map[string]string{"name": "d", "org": "Y"})
	for _, e := range [][2]int{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1], "DF", 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func pathStrings(g *Graph, r *Result) []string {
	var out []string
	for _, p := range r.Paths {
		s := ""
		for i, id := range p {
			if i > 0 {
				s += ","
			}
			s += g.Node(id).Props["name"]
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestSimplePathEnumeration(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*1..1]->(b:Class) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	got := pathStrings(g, r)
	want := []string{"a,b", "a,c", "b,d", "c,d"}
	if len(got) != len(want) {
		t.Fatalf("paths %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paths %v, want %v", got, want)
		}
	}
}

func TestHopRangeIncludesSingletons(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*0..2]->(b:Class) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	// 4 singletons + 4 length-2 + paths a,b,d and a,c,d.
	if len(r.Paths) != 10 {
		t.Fatalf("got %d paths: %v", len(r.Paths), pathStrings(g, r))
	}
}

func TestAllSameProperty(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*1..2]->(b:Class) WHERE allsame(p.org) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	got := pathStrings(g, r)
	want := []string{"a,b", "c,d"} // a,c and b,d mix orgs; longer paths too
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("paths %v, want %v", got, want)
	}
}

func TestDistinctThreshold(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*2..2]->(b:Class) WHERE distinct(p.org) <= 2 RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 2 { // a,b,d and a,c,d
		t.Fatalf("got %v", pathStrings(g, r))
	}
}

func TestContainsAndNot(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*1..2]->(b:Class) WHERE NOT (contains(p, 'a') AND contains(p, 'd')) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pathStrings(g, r) {
		if s == "a,b,d" || s == "a,c,d" {
			t.Fatalf("cannot-link path %q not filtered", s)
		}
	}
}

func TestOrCondition(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*1..1]->(b:Class) WHERE contains(p, 'b') OR contains(p, 'c') RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 4 {
		t.Fatalf("got %v", pathStrings(g, r))
	}
}

func TestLengthPredicate(t *testing.T) {
	g := diamond(t)
	r, err := g.Query("MATCH p = (a:Class)-[:DF*0..2]->(b:Class) WHERE length(p) >= 3 RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 2 {
		t.Fatalf("got %v", pathStrings(g, r))
	}
}

func TestSimplePathsNoCycles(t *testing.T) {
	g := New()
	a := g.AddNode("Class", map[string]string{"name": "a"})
	b := g.AddNode("Class", map[string]string{"name": "b"})
	_ = g.AddEdge(a, b, "DF", 1)
	_ = g.AddEdge(b, a, "DF", 1)
	r, err := g.Query("MATCH p = (x:Class)-[:DF*1..5]->(y:Class) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Paths {
		seen := map[int]bool{}
		for _, id := range p {
			if seen[id] {
				t.Fatalf("path revisits node: %v", p)
			}
			seen[id] = true
		}
	}
}

func TestEdgeTypeFilter(t *testing.T) {
	g := New()
	a := g.AddNode("Class", map[string]string{"name": "a"})
	b := g.AddNode("Class", map[string]string{"name": "b"})
	_ = g.AddEdge(a, b, "OTHER", 1)
	r, err := g.Query("MATCH p = (x:Class)-[:DF*1..1]->(y:Class) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 0 {
		t.Fatal("edge type filter ignored")
	}
}

func TestLabelFilter(t *testing.T) {
	g := New()
	a := g.AddNode("Class", map[string]string{"name": "a"})
	o := g.AddNode("Other", map[string]string{"name": "o"})
	_ = g.AddEdge(a, o, "DF", 1)
	r, err := g.Query("MATCH p = (x:Class)-[:DF*1..1]->(y:Class) RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 0 {
		t.Fatal("destination label filter ignored")
	}
}

func TestQuerySyntaxErrors(t *testing.T) {
	g := diamond(t)
	bad := []string{
		"",
		"MATCH (a)-[:DF*1..2]->(b)",              // missing RETURN
		"MATCH p = (a)-[:DF*3..1]->(b) RETURN p", // inverted range
		"MATCH p = (a)-[:DF*1..2]->(b) WHERE bogus(p) RETURN p",  // unknown predicate
		"MATCH p = (a)-[:DF*1..2]->(b) RETURN p trailing tokens", // trailing
	}
	for _, q := range bad {
		if _, err := g.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	if err := g.AddEdge(0, 1, "DF", 1); err == nil {
		t.Fatal("expected range error")
	}
}

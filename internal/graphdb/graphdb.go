// Package graphdb is a small in-memory property-graph database with a
// Cypher-inspired path query language. It is the substrate for the paper's
// graph-querying baseline BL_Q (§VI-A), which stores the DFG in a graph
// database and retrieves candidate groups via path queries with property
// predicates. The supported query fragment is exactly what class-level
// (R_C) constraints need — which is also BL_Q's documented limitation.
//
// Query shape:
//
//	MATCH p = (a:Class)-[:DF*1..5]->(b:Class)
//	WHERE distinct(p.org) <= 1 AND NOT (contains(p, 'rcp') AND contains(p, 'acc'))
//	RETURN p
//
// Semantics: enumerate all simple directed paths whose edge count lies in
// the given range (node count = edges + 1; *0..0 yields single nodes) and
// whose nodes satisfy the WHERE condition; RETURN p yields the paths.
package graphdb

import (
	"fmt"
)

// Node is a labelled vertex with string properties.
type Node struct {
	ID    int
	Label string
	Props map[string]string
}

// Edge is a typed directed edge with an optional weight.
type Edge struct {
	From, To int
	Type     string
	Weight   float64
}

// Graph is the store. Zero value is not ready; use New.
type Graph struct {
	nodes []Node
	out   map[int][]Edge
	in    map[int][]Edge
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{out: make(map[int][]Edge), in: make(map[int][]Edge)}
}

// AddNode inserts a node and returns its id.
func (g *Graph) AddNode(label string, props map[string]string) int {
	id := len(g.nodes)
	if props == nil {
		props = map[string]string{}
	}
	g.nodes = append(g.nodes, Node{ID: id, Label: label, Props: props})
	return id
}

// AddEdge inserts a directed edge.
func (g *Graph) AddEdge(from, to int, typ string, weight float64) error {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		return fmt.Errorf("graphdb: edge endpoints (%d,%d) out of range", from, to)
	}
	e := Edge{From: from, To: to, Type: typ, Weight: weight}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given id.
func (g *Graph) Node(id int) *Node { return &g.nodes[id] }

// NodesByLabel returns ids of nodes with the label.
func (g *Graph) NodesByLabel(label string) []int {
	var out []int
	for _, n := range g.nodes {
		if n.Label == label {
			out = append(out, n.ID)
		}
	}
	return out
}

// Result is a query result: each path is a node-id sequence.
type Result struct {
	Paths [][]int
}

// Query parses and executes a query.
func (g *Graph) Query(q string) (*Result, error) {
	ast, err := parseQuery(q)
	if err != nil {
		return nil, err
	}
	return g.execute(ast)
}

func (g *Graph) execute(q *queryAST) (*Result, error) {
	res := &Result{}
	// Seed DFS from every node matching the source label.
	for _, n := range g.nodes {
		if q.srcLabel != "" && n.Label != q.srcLabel {
			continue
		}
		g.dfs(q, []int{n.ID}, map[int]bool{n.ID: true}, res)
	}
	return res, nil
}

func (g *Graph) dfs(q *queryAST, path []int, onPath map[int]bool, res *Result) {
	edges := len(path) - 1
	if edges >= q.minHops && g.matches(q, path) {
		res.Paths = append(res.Paths, append([]int(nil), path...))
	}
	if edges >= q.maxHops {
		return
	}
	last := path[len(path)-1]
	for _, e := range g.out[last] {
		if q.edgeType != "" && e.Type != q.edgeType {
			continue
		}
		if onPath[e.To] {
			continue // simple paths only
		}
		if q.dstLabel != "" && g.nodes[e.To].Label != q.dstLabel {
			continue
		}
		onPath[e.To] = true
		g.dfs(q, append(path, e.To), onPath, res)
		delete(onPath, e.To)
	}
}

func (g *Graph) matches(q *queryAST, path []int) bool {
	if q.where == nil {
		return true
	}
	return q.where.eval(g, path)
}
